"""VMPC stream cipher workload (Table 4, 512-byte packets).

VMPC (Zoltak, FSE 2004) is an RC4-style stream cipher built around a
256-byte permutation ``P`` and the VMPC one-way function.  Every output
byte requires three nested permutation lookups — exactly the substitution-
table pattern pLUTo accelerates with 256-entry LUT queries — but the state
update is strictly serial, which is what makes VMPC slow on processors.

The reference implements the cipher directly on a Python list; the LUT
variant routes every permutation lookup through a
:class:`~repro.core.lut.LookupTable` (rebuilt whenever the permutation
changes) to validate the LUT-query decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.core.lut import LookupTable
from repro.core.recipe import WorkloadRecipe
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["VmpcWorkload", "vmpc_ksa", "vmpc_keystream"]


def vmpc_ksa(key: bytes, vector: bytes) -> tuple[list[int], int]:
    """VMPC key scheduling: initialise the permutation P and index s."""
    if not key or not vector:
        raise WorkloadError("VMPC needs a non-empty key and initialisation vector")
    permutation = list(range(256))
    s = 0
    for source in (key, vector, key):
        for m in range(768):
            n = m & 0xFF
            s = permutation[(s + permutation[n] + source[m % len(source)]) & 0xFF]
            permutation[n], permutation[s] = permutation[s], permutation[n]
    return permutation, s


def vmpc_keystream(
    permutation: list[int], s: int, length: int, lookup=None
) -> tuple[np.ndarray, list[int], int]:
    """Generate ``length`` keystream bytes; returns (stream, P, s).

    ``lookup`` optionally replaces direct permutation indexing (the pLUTo
    LUT-query path supplies a LUT-backed lookup here).
    """
    if lookup is None:
        lookup = lambda table, index: table[index]  # noqa: E731 - direct indexing
    p = list(permutation)
    stream = np.zeros(length, dtype=np.uint64)
    n = 0
    for i in range(length):
        a = lookup(p, n)
        s = lookup(p, (s + a) & 0xFF)
        out_index = (lookup(p, lookup(p, s)) + 1) & 0xFF
        stream[i] = lookup(p, out_index)
        p[n], p[s] = p[s], p[n]
        n = (n + 1) & 0xFF
    return stream, p, s


class VmpcWorkload(Workload):
    """VMPC keystream encryption of 512-byte packets."""

    name = "VMPC"
    default_elements = 1 << 19  # total plaintext bytes

    _KEY = bytes(range(1, 17))
    _VECTOR = bytes(range(16, 32))

    def __init__(self, packet_bytes: int = 512) -> None:
        if packet_bytes <= 0:
            raise WorkloadError("packet size must be positive")
        self.packet_bytes = packet_bytes

    @property
    def recipe(self) -> WorkloadRecipe:
        # Three nested permutation lookups per output byte map to three
        # 256-entry LUT queries; the permutation swap is an in-row update.
        return WorkloadRecipe(
            name=self.name,
            element_bits=8,
            sweeps_per_row=(256, 256, 256, 256),
            luts_loaded=(256,),
            bitwise_aaps_per_row=6,
            shift_commands_per_row=0,
            moves_per_row=2,
            output_bits_per_element=8,
            cpu_ops_per_element=15.0,
            kernel_ops_per_element=10.0,
            simd_efficiency=0.015,  # strictly serial state update per stream
            bytes_per_element=2.0,
            serial_fraction=0.0,
        )

    # ------------------------------------------------------------------ #
    # Input generation and references
    # ------------------------------------------------------------------ #
    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        self._require_positive(elements)
        packets = max(1, elements // self.packet_bytes)
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, size=packets * self.packet_bytes, dtype=np.uint64)

    def reference(self, data: np.ndarray) -> np.ndarray:
        return self._encrypt(data, use_lut=False)

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        return self._encrypt(data, use_lut=True)

    # ------------------------------------------------------------------ #
    # Implementation
    # ------------------------------------------------------------------ #
    def _encrypt(self, data: np.ndarray, *, use_lut: bool) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint64)
        permutation, s = vmpc_ksa(self._KEY, self._VECTOR)
        lookup = self._lut_lookup() if use_lut else None
        keystream, _, _ = vmpc_keystream(permutation, s, data.size, lookup=lookup)
        return data ^ keystream

    @staticmethod
    def _lut_lookup():
        """Permutation lookup routed through a LookupTable (rebuilt on change)."""
        cache: dict[tuple[int, ...], LookupTable] = {}

        def lookup(table: list[int], index: int) -> int:
            key = tuple(table)
            lut = cache.get(key)
            if lut is None:
                lut = LookupTable(
                    values=key, index_bits=8, element_bits=8, name="vmpc-p"
                )
                cache[key] = lut
            return int(lut.query(np.array([index]))[0])

        return lookup

"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.core.lut import lut_from_function
from repro.dram.energy import DDR4_ENERGY
from repro.dram.geometry import DRAMGeometry
from repro.dram.timing import DDR4_2400


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_geometry() -> DRAMGeometry:
    """A small DRAM geometry that keeps functional tests fast."""
    return DRAMGeometry(
        channels=1,
        ranks=1,
        bank_groups=1,
        banks_per_group=2,
        subarrays_per_bank=4,
        rows_per_subarray=64,
        row_size_bytes=64,
    )


@pytest.fixture
def ddr4_timing():
    """DDR4-2400 timing preset."""
    return DDR4_2400


@pytest.fixture
def ddr4_energy():
    """DDR4 energy preset."""
    return DDR4_ENERGY


@pytest.fixture
def square_lut():
    """An 8-bit squaring LUT (truncated to 8 bits)."""
    return lut_from_function(lambda x: (x * x) & 0xFF, 8, 8, name="square8")


@pytest.fixture(params=[PlutoDesign.BSA, PlutoDesign.GSA, PlutoDesign.GMC])
def any_design(request) -> PlutoDesign:
    """Parametrised fixture over the three pLUTo designs."""
    return request.param


@pytest.fixture
def bsa_engine() -> PlutoEngine:
    """A default pLUTo-BSA engine on DDR4."""
    return PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))

"""Regression tests for the PlutoSession API-validation bugfixes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.luts import BITWISE_OPERATIONS, bitcount_lut, bitwise_lut
from repro.api.session import PlutoSession
from repro.errors import ConfigurationError


class TestMallocValidation:
    @pytest.mark.parametrize("size", [0, -1, -100])
    def test_rejects_non_positive_size(self, size):
        session = PlutoSession()
        with pytest.raises(ConfigurationError):
            session.pluto_malloc(size, 8)
        # A failed allocation must not burn state: the next valid
        # allocation still gets the first auto-name.
        assert session.pluto_malloc(8, 8).name == "v0"

    @pytest.mark.parametrize("bit_width", [0, -4])
    def test_rejects_non_positive_bit_width(self, bit_width):
        session = PlutoSession()
        with pytest.raises(ConfigurationError):
            session.pluto_malloc(8, bit_width)
        assert not session.vectors

    def test_auto_name_skips_user_chosen_names(self):
        session = PlutoSession()
        session.pluto_malloc(8, 8, name="v0")
        session.pluto_malloc(8, 8, name="v2")
        auto_one = session.pluto_malloc(8, 8)
        auto_two = session.pluto_malloc(8, 8)
        assert auto_one.name == "v1"
        assert auto_two.name == "v3"
        assert len({vector.name for vector in session.vectors}) == 4

    def test_explicit_duplicate_still_rejected(self):
        session = PlutoSession()
        session.pluto_malloc(8, 8, name="data")
        with pytest.raises(ConfigurationError):
            session.pluto_malloc(8, 8, name="data")


class TestOutputWidthValidation:
    def test_add_rejects_narrow_output(self):
        session = PlutoSession()
        a = session.pluto_malloc(16, 4, "a")
        b = session.pluto_malloc(16, 4, "b")
        narrow = session.pluto_malloc(16, 4, "narrow")
        with pytest.raises(ConfigurationError):
            session.api_pluto_add(a, b, narrow, bit_width=4)

    def test_mul_rejects_narrow_output(self):
        session = PlutoSession()
        a = session.pluto_malloc(16, 4, "a")
        b = session.pluto_malloc(16, 4, "b")
        narrow = session.pluto_malloc(16, 6, "narrow")
        with pytest.raises(ConfigurationError):
            session.api_pluto_mul(a, b, narrow, bit_width=4)

    def test_map_rejects_narrow_output(self):
        session = PlutoSession()
        source = session.pluto_malloc(16, 8, "source")
        narrow = session.pluto_malloc(16, 4, "narrow")
        with pytest.raises(ConfigurationError):
            session.api_pluto_map(bitcount_lut(8), source, narrow)

    def test_bitwise_lut_rejects_narrow_output(self):
        session = PlutoSession()
        a = session.pluto_malloc(16, 1, "a")
        b = session.pluto_malloc(16, 1, "b")
        narrow = session.pluto_malloc(16, 1, "narrow")
        with pytest.raises(ConfigurationError):
            session.api_pluto_bitwise_lut("xor", a, b, narrow)

    def test_exact_width_accepted_and_executes(self):
        session = PlutoSession()
        a = session.pluto_malloc(16, 4, "a")
        b = session.pluto_malloc(16, 4, "b")
        out = session.pluto_malloc(16, 8, "out")
        session.api_pluto_add(a, b, out, bit_width=4)
        data = np.arange(16) % 16
        result = session.run({"a": data, "b": data})
        assert np.array_equal(result.outputs["out"], data + data)


class TestBitwiseUnification:
    """Both bitwise entry points accept the same set, with the same error."""

    @pytest.mark.parametrize("operation", sorted(BITWISE_OPERATIONS))
    def test_bitwise_accepts_full_set(self, operation):
        session = PlutoSession()
        a = session.pluto_malloc(16, 4, "a")
        b = session.pluto_malloc(16, 4, "b")
        out = session.pluto_malloc(16, 4, f"out_{operation}")
        session.api_pluto_bitwise(operation, a, b, out)

    @pytest.mark.parametrize("operation", sorted(BITWISE_OPERATIONS))
    def test_bitwise_lut_accepts_full_set(self, operation):
        session = PlutoSession()
        a = session.pluto_malloc(16, 1, "a")
        b = session.pluto_malloc(16, 1, "b")
        out = session.pluto_malloc(16, 2, f"out_{operation}")
        session.api_pluto_bitwise_lut(operation, a, b, out)

    @pytest.mark.parametrize("operation", ["nope", "mux", ""])
    def test_both_raise_configuration_error(self, operation):
        session = PlutoSession()
        a = session.pluto_malloc(16, 2, "a")
        b = session.pluto_malloc(16, 2, "b")
        out = session.pluto_malloc(16, 2, "out")
        with pytest.raises(ConfigurationError):
            session.api_pluto_bitwise(operation, a, b, out)
        with pytest.raises(ConfigurationError):
            session.api_pluto_bitwise_lut(operation, a, b, out)

    @pytest.mark.parametrize("operation", ["nand", "nor"])
    def test_new_kinds_execute_bit_exactly(self, operation):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 16, 64)
        b = rng.integers(0, 16, 64)
        session = PlutoSession()
        va = session.pluto_malloc(64, 4, "a")
        vb = session.pluto_malloc(64, 4, "b")
        out = session.pluto_malloc(64, 4, "out")
        session.api_pluto_bitwise(operation, va, vb, out)
        result = session.run({"a": a, "b": b})
        combined = (a & b) if operation == "nand" else (a | b)
        assert np.array_equal(result.outputs["out"], (~combined) & 0xF)

    @pytest.mark.parametrize("operation", sorted(BITWISE_OPERATIONS))
    def test_lut_and_ambit_paths_agree(self, operation):
        """The 4-entry-LUT route computes the same bit as the Ambit route."""
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2, 32)
        b = rng.integers(0, 2, 32)
        lut_session = PlutoSession()
        va = lut_session.pluto_malloc(32, 1, "a")
        vb = lut_session.pluto_malloc(32, 1, "b")
        out = lut_session.pluto_malloc(32, 2, "out")
        lut_session.api_pluto_bitwise_lut(operation, va, vb, out)
        ambit_session = PlutoSession()
        wa = ambit_session.pluto_malloc(32, 1, "a")
        wb = ambit_session.pluto_malloc(32, 1, "b")
        wout = ambit_session.pluto_malloc(32, 1, "out")
        ambit_session.api_pluto_bitwise(operation, wa, wb, wout)
        inputs = {"a": a, "b": b}
        lut_bit = lut_session.run(inputs).outputs["out"] & 1
        ambit_bit = ambit_session.run(inputs).outputs["out"] & 1
        assert np.array_equal(lut_bit, ambit_bit)

    def test_lut_builder_error_mentions_supported_set(self):
        from repro.errors import LUTError

        with pytest.raises(LUTError, match="nand"):
            bitwise_lut("madd")

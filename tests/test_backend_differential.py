"""Differential testing of the execution backends.

Random compiled programs must produce identical outputs *and identical
command traces* on the functional (subarray row-sweep) and vectorized
(NumPy gather) backends, across all three pLUTo designs and both memory
kinds.  The trace comparison is structural (kind/bank/subarray/rows/meta
per command) plus exact latency/energy totals — accounting is computed by
the controller independently of the backend, and this test pins that
invariant down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.handles import ApiCall
from repro.api.luts import bitcount_lut, bitwise_lut
from repro.api.session import PlutoSession, program_cache_size
from repro.backend import FunctionalBackend, VectorizedBackend, resolve_backend
from repro.controller.executor import PlutoController
from repro.core.designs import PlutoDesign
from repro.core.engine import DDR4, THREE_DS, PlutoConfig, PlutoEngine
from repro.errors import ConfigurationError

DESIGNS = list(PlutoDesign)
MEMORIES = (DDR4, THREE_DS)


def _random_program(rng: np.random.Generator, tag: int) -> PlutoSession:
    """Build a random API program whose external inputs are 4-bit vectors.

    Vector names embed ``tag`` so structurally different programs never
    collide in the compiled-program cache.
    """
    session = PlutoSession()
    size = int(rng.integers(8, 65))
    counter = 0

    def malloc(bits: int):
        nonlocal counter
        counter += 1
        return session.pluto_malloc(size, bits, f"p{tag}_v{counter}_{bits}b")

    # 4-bit vectors usable as LUT-routine operands; ``pool`` additionally
    # holds wider intermediates usable by bitwise/shift/move/map.
    narrow = [malloc(4) for _ in range(int(rng.integers(2, 4)))]
    pool = list(narrow)

    for _ in range(int(rng.integers(2, 6))):
        op = str(rng.choice(["add", "mul", "map", "bitwise", "bitwise_lut", "shift", "move"]))
        if op in ("add", "mul"):
            in1, in2 = (narrow[int(i)] for i in rng.integers(0, len(narrow), 2))
            out = malloc(8)
            if op == "add":
                session.api_pluto_add(in1, in2, out, bit_width=4)
            else:
                session.api_pluto_mul(in1, in2, out, bit_width=4)
            pool.append(out)
        elif op == "map":
            source = pool[int(rng.integers(len(pool)))]
            out = malloc(source.bit_width)
            session.api_pluto_map(bitcount_lut(source.bit_width), source, out)
            pool.append(out)
        elif op == "bitwise":
            in1, in2 = (pool[int(i)] for i in rng.integers(0, len(pool), 2))
            out = malloc(min(in1.bit_width, in2.bit_width))
            kind = str(rng.choice(["and", "or", "xor", "xnor", "not"]))
            session.api_pluto_bitwise(kind, in1, in2 if kind != "not" else None, out)
            pool.append(out)
        elif op == "bitwise_lut":
            # 4-bit-operand bitwise LUT (256 entries), exercising the
            # shift + OR + pluto_op lowering with a non-arithmetic table.
            in1, in2 = (narrow[int(i)] for i in rng.integers(0, len(narrow), 2))
            out = malloc(8)
            session.calls.append(
                ApiCall(
                    operation="xor_lut",
                    inputs=(in1, in2),
                    output=out,
                    lut=bitwise_lut("xor", 4),
                    parameters={"bit_width": 4},
                )
            )
            pool.append(out)
        elif op == "shift":
            source = pool[int(rng.integers(len(pool)))]
            out = malloc(source.bit_width)
            session.api_pluto_shift(
                source, out, int(rng.integers(0, 4)), str(rng.choice(["l", "r"]))
            )
            pool.append(out)
        else:
            source = pool[int(rng.integers(len(pool)))]
            out = malloc(source.bit_width)
            session.api_pluto_move(source, out)
            pool.append(out)
    return session


def _inputs_for(compiled, rng: np.random.Generator):
    return {
        vector.name: rng.integers(0, 1 << min(vector.bit_width, 4), vector.size)
        for vector in compiled.external_inputs
    }


def _trace_signature(trace):
    return [
        (command.kind, command.bank, command.subarray, command.rows, command.meta)
        for command in trace
    ]


@pytest.mark.parametrize("memory", MEMORIES)
@pytest.mark.parametrize("design", DESIGNS)
def test_backends_agree_on_random_programs(design, memory):
    rng = np.random.default_rng(abs(hash((design.value, memory))) % (2**32))
    engine = PlutoEngine(PlutoConfig(design=design, memory=memory))
    for round_index in range(2):
        tag = abs(hash((design.value, memory, round_index))) % 10**6
        session = _random_program(rng, tag)
        compiled = session.compile()
        inputs = _inputs_for(compiled, rng)

        functional = PlutoController(engine, backend="functional").execute(
            compiled, dict(inputs)
        )
        vectorized = PlutoController(engine, backend="vectorized").execute(
            compiled, dict(inputs)
        )

        assert functional.backend == "functional"
        assert vectorized.backend == "vectorized"
        assert functional.outputs.keys() == vectorized.outputs.keys()
        for name in functional.outputs:
            assert np.array_equal(functional.outputs[name], vectorized.outputs[name]), (
                f"output {name!r} diverged for {design} on {memory}"
            )
        for name in functional.registers:
            assert np.array_equal(
                functional.registers[name], vectorized.registers[name]
            )
        assert _trace_signature(functional.trace) == _trace_signature(vectorized.trace)
        assert functional.latency_ns == vectorized.latency_ns
        assert functional.energy_nj == vectorized.energy_nj
        assert functional.lut_queries == vectorized.lut_queries
        assert functional.instructions_executed == vectorized.instructions_executed


def test_session_batch_uses_compile_cache():
    before = program_cache_size()
    rng = np.random.default_rng(7)
    session = _random_program(rng, 999_001)
    compiled = session.compile()
    batch = session.run_batch(_inputs_for(compiled, rng) for _ in range(3))
    assert len(batch) == 3
    assert batch.total_latency_ns == sum(r.latency_ns for r in batch)
    # One new structure: the three executions share a single compile.
    assert program_cache_size() == before + 1


def test_resolve_backend_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        resolve_backend("simd")
    assert isinstance(resolve_backend("functional"), FunctionalBackend)
    assert isinstance(resolve_backend("vectorized"), VectorizedBackend)
    instance = VectorizedBackend()
    assert resolve_backend(instance) is instance

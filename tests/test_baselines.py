"""Tests for the CPU/GPU/FPGA/PnM and prior-PuM baseline models."""

from __future__ import annotations

import pytest

from repro.baselines.base import BaselineCost
from repro.baselines.pnm import HMC_PNM, PnmBaseline
from repro.baselines.prior_pum import AMBIT, DRISA_SYSTEM, LACC, PRIOR_PUM_SYSTEMS, SIMDRAM
from repro.baselines.processor import (
    CPU_XEON_5118,
    FPGA_ZCU102,
    GPU_RTX_3080TI,
    ProcessorBaseline,
)
from repro.core.recipe import WorkloadRecipe
from repro.errors import ConfigurationError


@pytest.fixture
def streaming_recipe() -> WorkloadRecipe:
    """A simple 8-bit streaming workload (one 256-entry LUT query per value)."""
    return WorkloadRecipe(
        name="stream",
        element_bits=8,
        sweeps_per_row=(256,),
        luts_loaded=(256,),
        cpu_ops_per_element=10.0,
        kernel_ops_per_element=2.0,
        simd_efficiency=0.1,
        bytes_per_element=2.0,
    )


class TestProcessorBaselines:
    def test_latency_and_energy_positive(self, streaming_recipe):
        for spec in (CPU_XEON_5118, GPU_RTX_3080TI, FPGA_ZCU102):
            cost = ProcessorBaseline(spec).evaluate(streaming_recipe, 1 << 20)
            assert cost.latency_ns > 0
            assert cost.energy_nj > 0
            assert cost.system == spec.name

    def test_gpu_faster_than_cpu_on_streaming_work(self, streaming_recipe):
        cpu = ProcessorBaseline(CPU_XEON_5118).latency_ns(streaming_recipe, 1 << 22)
        gpu = ProcessorBaseline(GPU_RTX_3080TI).latency_ns(streaming_recipe, 1 << 22)
        assert gpu < cpu

    def test_gpu_bounded_by_host_transfer(self):
        recipe = WorkloadRecipe(
            name="light",
            element_bits=8,
            cpu_ops_per_element=1.0,
            simd_efficiency=1.0,
            bytes_per_element=2.0,
        )
        elements = 1 << 24
        cost = ProcessorBaseline(GPU_RTX_3080TI).evaluate(recipe, elements)
        transfer_ns = elements * recipe.bytes_per_element / 12.0
        assert cost.latency_ns >= transfer_ns

    def test_fpga_uses_kernel_ops(self):
        heavy_library = WorkloadRecipe(
            name="library",
            element_bits=8,
            cpu_ops_per_element=100.0,
            kernel_ops_per_element=1.0,
        )
        light_library = WorkloadRecipe(
            name="thin",
            element_bits=8,
            cpu_ops_per_element=1.0,
            kernel_ops_per_element=1.0,
        )
        fpga = ProcessorBaseline(FPGA_ZCU102)
        assert fpga.latency_ns(heavy_library, 1 << 20) == pytest.approx(
            fpga.latency_ns(light_library, 1 << 20)
        )

    def test_simd_efficiency_slows_cpu(self):
        fast = WorkloadRecipe(
            name="f", element_bits=8, cpu_ops_per_element=8.0, simd_efficiency=1.0
        )
        slow = WorkloadRecipe(
            name="s", element_bits=8, cpu_ops_per_element=8.0, simd_efficiency=0.05
        )
        cpu = ProcessorBaseline(CPU_XEON_5118)
        assert cpu.latency_ns(slow, 1 << 22) > cpu.latency_ns(fast, 1 << 22)

    def test_zero_elements_rejected(self, streaming_recipe):
        with pytest.raises(ConfigurationError):
            ProcessorBaseline(CPU_XEON_5118).evaluate(streaming_recipe, 0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            BaselineCost(system="x", workload="w", elements=1, latency_ns=-1, energy_nj=0)


class TestPnmBaseline:
    def test_faster_than_cpu_for_memory_bound_work(self, streaming_recipe):
        elements = 1 << 22
        cpu = ProcessorBaseline(CPU_XEON_5118).latency_ns(streaming_recipe, elements)
        pnm = PnmBaseline().latency_ns(streaming_recipe, elements)
        assert pnm < cpu

    def test_bitwise_only_work_runs_near_banks(self):
        bitwise_recipe = WorkloadRecipe(
            name="bitwise",
            element_bits=2,
            bitwise_aaps_per_row=4,
            cpu_ops_per_element=1.0,
            kernel_ops_per_element=1.0,
            bytes_per_element=0.5,
        )
        lut_recipe = WorkloadRecipe(
            name="lut",
            element_bits=2,
            sweeps_per_row=(4,),
            cpu_ops_per_element=1.0,
            kernel_ops_per_element=1.0,
            bytes_per_element=0.5,
        )
        pnm = PnmBaseline()
        elements = 1 << 22
        assert pnm.latency_ns(bitwise_recipe, elements) < pnm.latency_ns(lut_recipe, elements)

    def test_spec_area_exposed(self):
        assert PnmBaseline().area_mm2 == pytest.approx(HMC_PNM.area_mm2)


class TestPriorPum:
    def test_table6_anchor_latencies(self):
        # The coefficients are calibrated against Table 6's reported values.
        assert AMBIT.addition_latency_ns(4) == pytest.approx(5081, rel=0.05)
        assert AMBIT.multiplication_latency_ns(4) == pytest.approx(19065, rel=0.05)
        assert SIMDRAM.addition_latency_ns(4) == pytest.approx(1585, rel=0.05)
        assert SIMDRAM.multiplication_latency_ns(4) == pytest.approx(7451, rel=0.05)
        assert LACC.multiplication_latency_ns(4) == pytest.approx(5365, rel=0.05)
        assert DRISA_SYSTEM.addition_latency_ns(4) == pytest.approx(1756, rel=0.05)

    def test_bitwise_latencies_close_to_table6(self):
        assert AMBIT.bitwise_latency_ns("not") == pytest.approx(135, rel=0.1)
        assert AMBIT.bitwise_latency_ns("and") == pytest.approx(270, rel=0.1)
        assert DRISA_SYSTEM.bitwise_latency_ns("and") == pytest.approx(415, rel=0.05)

    def test_multiplication_quadratic_in_bit_width(self):
        for system in PRIOR_PUM_SYSTEMS:
            ratio = system.multiplication_latency_ns(8) / system.multiplication_latency_ns(4)
            assert ratio == pytest.approx(4.0)

    def test_lacc_does_not_support_bitcount(self):
        assert LACC.bitcount_latency_ns(4) is None
        assert SIMDRAM.bitcount_latency_ns(4) is not None

    def test_unsupported_bitwise_rejected(self):
        with pytest.raises(ConfigurationError):
            AMBIT.bitwise_latency_ns("maj3")

    def test_drisa_has_reduced_capacity(self):
        assert DRISA_SYSTEM.capacity_gb == 2
        assert all(system.capacity_gb == 8 for system in (AMBIT, SIMDRAM, LACC))

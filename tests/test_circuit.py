"""Tests for the bitline circuit model and the Monte-Carlo study (Figure 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.bitline import (
    DESIGN_VARIANTS,
    BitlineParameters,
    CellState,
    simulate_activation,
)
from repro.circuit.montecarlo import MonteCarloConfig, MonteCarloRunner
from repro.circuit.senseamp import SenseAmplifier
from repro.errors import ConfigurationError


class TestBitlineParameters:
    def test_precharge_is_half_vdd(self):
        parameters = BitlineParameters()
        assert parameters.precharge_voltage == pytest.approx(parameters.vdd / 2)

    def test_charge_share_delta_reasonable(self):
        parameters = BitlineParameters()
        # With Cc ~ 22 fF and Cb ~ 85 fF the swing is ~100 mV at VDD = 1 V.
        assert 0.05 < parameters.charge_share_delta < 0.2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BitlineParameters(vdd=0.0)
        with pytest.raises(ConfigurationError):
            BitlineParameters(series_resistance_factor=0.5)


class TestActivationTransient:
    def test_one_cell_settles_to_vdd(self):
        transient = simulate_activation(BitlineParameters(), CellState.ONE)
        assert transient.settled_correctly()
        assert transient.final_voltage > 0.9

    def test_zero_cell_settles_to_ground(self):
        transient = simulate_activation(BitlineParameters(), CellState.ZERO)
        assert transient.settled_correctly()
        assert transient.final_voltage < 0.1

    def test_disconnected_cell_keeps_precharge(self):
        parameters = BitlineParameters(cell_connected=False)
        transient = simulate_activation(parameters, CellState.ONE)
        assert transient.final_voltage == pytest.approx(parameters.precharge_voltage)

    def test_gated_sense_amp_never_restores(self):
        parameters = BitlineParameters(sense_enabled=False)
        transient = simulate_activation(parameters, CellState.ONE)
        # Charge sharing moves the bitline a little but never to the rail.
        assert transient.final_voltage < 0.7
        assert not transient.settled_correctly()

    def test_sensing_margin_positive_before_enable(self):
        transient = simulate_activation(BitlineParameters(), CellState.ONE)
        assert transient.sensing_margin > 0.02

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_activation(BitlineParameters(), CellState.ONE, duration_ns=0.0)

    def test_design_variants_cover_paper_panels(self):
        assert set(DESIGN_VARIANTS) == {
            "Baseline",
            "pLUTo-BSA",
            "pLUTo-GSA",
            "pLUTo-GMC",
        }

    def test_gsa_transient_slower_than_baseline(self):
        baseline = simulate_activation(
            DESIGN_VARIANTS["Baseline"](BitlineParameters()), CellState.ONE
        )
        gsa = simulate_activation(
            DESIGN_VARIANTS["pLUTo-GSA"](BitlineParameters()), CellState.ONE
        )
        midpoint = len(baseline.time_ns) // 8
        assert gsa.voltage_v[midpoint] <= baseline.voltage_v[midpoint] + 1e-9


class TestSenseAmplifier:
    def test_senses_correct_value(self):
        amplifier = SenseAmplifier()
        parameters = BitlineParameters()
        high = parameters.precharge_voltage + 0.08
        low = parameters.precharge_voltage - 0.08
        assert amplifier.sense(high, parameters) is CellState.ONE
        assert amplifier.sense(low, parameters) is CellState.ZERO

    def test_rejects_tiny_margin(self):
        amplifier = SenseAmplifier(min_margin_v=0.05)
        parameters = BitlineParameters()
        with pytest.raises(ConfigurationError):
            amplifier.sense(parameters.precharge_voltage + 0.01, parameters)

    def test_disabled_amplifier_cannot_sense(self):
        amplifier = SenseAmplifier(enabled=False)
        parameters = BitlineParameters()
        assert not amplifier.can_sense(parameters.vdd, parameters)
        with pytest.raises(ConfigurationError):
            amplifier.sense(parameters.vdd, parameters)


class TestMonteCarlo:
    def test_all_designs_settle_correctly(self):
        runner = MonteCarloRunner(MonteCarloConfig(runs=30))
        for outcome in runner.run_all().values():
            assert outcome.all_settled

    def test_disturbance_below_one_percent(self):
        # The paper reports final-voltage disturbances of ~0.9 % of VDD.
        runner = MonteCarloRunner(MonteCarloConfig(runs=50))
        for outcome in runner.run_all().values():
            assert outcome.max_disturbance_fraction <= 0.01

    def test_reproducible_with_same_seed(self):
        first = MonteCarloRunner(MonteCarloConfig(runs=10, seed=3)).run_design("pLUTo-BSA")
        second = MonteCarloRunner(MonteCarloConfig(runs=10, seed=3)).run_design("pLUTo-BSA")
        assert np.allclose(first.final_voltages, second.final_voltages)

    def test_unknown_design_rejected(self):
        runner = MonteCarloRunner(MonteCarloConfig(runs=2))
        with pytest.raises(ConfigurationError):
            runner.run_design("pLUTo-XYZ")

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(runs=0)
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(variation_sigma=1.5)

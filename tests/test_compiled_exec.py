"""Tests for the whole-program compiled execution tier (backend/compiled.py).

Contract: executing through the compiled tier — one cached NumPy closure
per program structure — is indistinguishable from the per-instruction
interpreted vectorized walk and from the functional oracle: bit-identical
outputs and registers, identical command traces and totals, identical
error behavior (messages included).  The closure cache is bounded,
surfaced through ``PlutoSession.cache_stats()``, and covered by
``clear_all_caches()``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.backend.compiled as compiled_module
from repro.api.luts import color_grade_lut
from repro.api.session import (
    PlutoSession,
    clear_all_caches,
    compile_cached_with_key,
)
from repro.backend.compiled import (
    CompiledExecutable,
    compile_program,
    compiled_exec_cached,
    compiled_exec_stats,
)
from repro.controller.dispatch import ParallelDispatcher
from repro.controller.executor import PlutoController
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.errors import ExecutionError, LUTError
from repro.utils.memo import BoundedMemo
from repro.workloads.programs import workload_program

ELEMENTS = 96


def _mixed_program(elements: int = ELEMENTS):
    """Every compilable instruction class: mul, add, map, bitwise, shift."""
    session = PlutoSession()
    a = session.pluto_malloc(elements, 2, "a")
    b = session.pluto_malloc(elements, 2, "b")
    c = session.pluto_malloc(elements, 4, "c")
    tmp = session.pluto_malloc(elements, 4, "tmp")
    summed = session.pluto_malloc(elements, 8, "summed")
    graded = session.pluto_malloc(elements, 8, "graded")
    mixed = session.pluto_malloc(elements, 8, "mixed")
    shifted = session.pluto_malloc(elements, 8, "shifted")
    session.api_pluto_mul(a, b, tmp, bit_width=2)
    session.api_pluto_add(c, tmp, summed, bit_width=4)
    session.api_pluto_map(color_grade_lut(), summed, graded)
    session.api_pluto_bitwise("xor", graded, summed, mixed)
    session.api_pluto_shift(mixed, shifted, 2, "r")
    rng = np.random.default_rng(9)
    inputs = {
        "a": rng.integers(0, 4, elements, dtype=np.uint64),
        "b": rng.integers(0, 4, elements, dtype=np.uint64),
        "c": rng.integers(0, 16, elements, dtype=np.uint64),
    }
    return session, inputs


def _assert_identical(result, reference):
    assert set(result.outputs) == set(reference.outputs)
    for name, data in reference.outputs.items():
        assert np.array_equal(result.outputs[name], data), name
    assert set(result.registers) == set(reference.registers)
    for name, data in reference.registers.items():
        assert np.array_equal(result.registers[name], data), name
    assert result.lut_queries == reference.lut_queries
    assert result.instructions_executed == reference.instructions_executed
    assert result.trace.total_latency_ns == reference.trace.total_latency_ns
    assert result.trace.total_energy_nj == reference.trace.total_energy_nj
    assert [
        (cmd.kind, cmd.bank, cmd.rows) for cmd in result.trace.commands
    ] == [(cmd.kind, cmd.bank, cmd.rows) for cmd in reference.trace.commands]


class TestCompiledParity:
    def test_matches_interpreted_and_functional(self, any_design):
        session, inputs = _mixed_program()
        compiled, key = compile_cached_with_key(session.calls)
        assert key is not None
        engine = PlutoEngine(PlutoConfig(design=any_design))
        jit = PlutoController(engine, backend="vectorized")
        interp = PlutoController(engine, backend="vectorized", jit=False)
        oracle = PlutoController(engine, backend="functional")
        result = jit.execute(compiled, dict(inputs), structure_key=key)
        _assert_identical(result, interp.execute(compiled, dict(inputs), structure_key=key))
        _assert_identical(result, oracle.execute(compiled, dict(inputs), structure_key=key))

    @pytest.mark.parametrize(
        "name", ["image", "salsa20", "crc", "vmpc", "bitcount", "vector_ops"]
    )
    def test_workload_programs_match(self, name):
        workload = workload_program(name, elements=64, seed=4)
        compiled, key = compile_cached_with_key(workload.session.calls)
        engine = PlutoEngine(PlutoConfig())
        jit = PlutoController(engine, backend="vectorized")
        interp = PlutoController(engine, backend="vectorized", jit=False)
        result = jit.execute(compiled, dict(workload.inputs), structure_key=key)
        reference = interp.execute(
            compiled, dict(workload.inputs), structure_key=key
        )
        _assert_identical(result, reference)

    def test_serve_bails_to_generic_path_on_extra_seeds(self):
        """Seeding a non-external register takes run_finals, same results."""
        session, inputs = _mixed_program(32)
        compiled, key = compile_cached_with_key(session.calls)
        seeded = dict(inputs, tmp=np.zeros(32, dtype=np.uint64))
        engine = PlutoEngine(PlutoConfig())
        jit = PlutoController(engine, backend="vectorized")
        interp = PlutoController(engine, backend="vectorized", jit=False)
        _assert_identical(
            jit.execute(compiled, dict(seeded), structure_key=key),
            interp.execute(compiled, dict(seeded), structure_key=key),
        )

    def test_error_behavior_matches_interpreted(self):
        """Same exception type AND message on every invalid-input shape."""
        workload = workload_program("image", elements=32, seed=0)
        compiled, key = compile_cached_with_key(workload.session.calls)
        engine = PlutoEngine(PlutoConfig())
        jit = PlutoController(engine, backend="vectorized")
        interp = PlutoController(engine, backend="vectorized", jit=False)
        cases = [
            # Signed -1 wraps to 2^64-1 as uint64: the width check on the
            # caller's dtype passes (max is -1), so the LUT query must
            # raise — the intp wrap window may not silently alias it.
            {"pixels": np.full(32, -1, dtype=np.int64)},
            {"pixels": np.full(32, 300, dtype=np.uint64)},
            {"pixels": np.zeros(31, dtype=np.uint64)},
            {},
            {"pixels": np.zeros(32, dtype=np.uint64), "bogus": np.zeros(32)},
        ]
        for inputs in cases:
            with pytest.raises((ExecutionError, LUTError)) as reference:
                interp.execute(compiled, dict(inputs), structure_key=key)
            with pytest.raises(type(reference.value)) as result:
                jit.execute(compiled, dict(inputs), structure_key=key)
            assert str(result.value) == str(reference.value)

    def test_functional_backend_never_compiles(self):
        session, inputs = _mixed_program(16)
        compiled, key = compile_cached_with_key(session.calls)
        with pytest.raises(ExecutionError, match="oracle"):
            compile_program(compiled, backend="functional")
        result = PlutoController(backend="functional").execute(
            compiled, dict(inputs), structure_key=key
        )
        assert result.backend == "functional"


class TestCompiledFused:
    def test_fused_dispatch_uses_compiled_tier(self):
        session, inputs = _mixed_program(66)
        engine = PlutoEngine(PlutoConfig())
        fused = ParallelDispatcher(engine, fused=True).execute(
            session.calls, inputs, shards=3
        )
        loop = ParallelDispatcher(engine, fused=False).execute(
            session.calls, inputs, shards=3
        )
        for name, data in loop.outputs.items():
            assert np.array_equal(fused.outputs[name], data), name
        assert fused.makespan_ns == loop.makespan_ns

    def test_unequal_size_move_refuses_fused_closure(self):
        """A partial-row move (ISA level; the API forbids it) keeps the
        destination tail via slice assignment — which has no stacked
        equivalent, so the executable refuses fused execution."""
        from repro.api.handles import PlutoVector
        from repro.compiler.lowering import CompiledProgram
        from repro.isa.instructions import PlutoMove, PlutoRowAlloc
        from repro.isa.program import PlutoProgram
        from repro.isa.registers import RegisterFile

        register_file = RegisterFile()
        small = register_file.allocate_row(8, 8)
        big = register_file.allocate_row(16, 8)
        program = PlutoProgram()
        program.append(
            PlutoRowAlloc(destination=small, size_elements=8, bit_width=8)
        )
        program.append(
            PlutoRowAlloc(destination=big, size_elements=16, bit_width=8)
        )
        program.append(PlutoMove(destination=big, source=small))
        compiled = CompiledProgram(
            program=program,
            register_file=register_file,
            vector_bindings={"small": small, "big": big},
            lut_bindings={},
            external_inputs=[PlutoVector("small", 8, 8)],
            outputs=[PlutoVector("big", 16, 8)],
        )
        executable = compile_program(compiled)
        assert not executable.supports_fused
        with pytest.raises(ExecutionError, match="fused"):
            executable.run_finals(
                {"small": np.arange(8, dtype=np.uint64)}, shards=2
            )
        finals = executable.run_finals({"small": np.arange(8, dtype=np.uint64)})
        by_slot = dict(zip(executable.final_slots, finals))
        merged = by_slot[big.index]
        assert np.array_equal(merged[:8], np.arange(8))
        assert not merged[8:].any()  # the zero-initialized tail survives


class TestCompiledCache:
    def test_hit_then_eviction(self, monkeypatch):
        monkeypatch.setattr(compiled_module, "_COMPILED_MEMO", BoundedMemo(2))
        programs = []
        for elements in (16, 24, 32):
            session, _ = _mixed_program(elements)
            programs.append(compile_cached_with_key(session.calls))
        first, first_key = programs[0]
        assert compiled_exec_stats()["size"] == 0

        executable = compiled_exec_cached(first, structure_key=first_key)
        assert isinstance(executable, CompiledExecutable)
        again = compiled_exec_cached(first, structure_key=first_key)
        assert again is executable  # hit returns the same closure
        stats = compiled_exec_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

        # Two more structures overflow the 2-entry bound: the oldest
        # closure is evicted and recompiles on the next request.
        for program, key in programs[1:]:
            compiled_exec_cached(program, structure_key=key)
        assert compiled_exec_stats()["size"] == 2
        rebuilt = compiled_exec_cached(first, structure_key=first_key)
        assert rebuilt is not executable
        assert compiled_exec_stats()["misses"] > stats["misses"]

    def test_uncompilable_key_is_counted(self):
        session, _ = _mixed_program(16)
        compiled, _ = compile_cached_with_key(session.calls)
        before = compiled_exec_stats()["uncached"]
        assert compiled_exec_cached(compiled, structure_key=None) is None
        assert compiled_exec_stats()["uncached"] == before + 1

    def test_surfaced_in_session_stats_and_cleared(self):
        session, inputs = _mixed_program(16)
        session.run(inputs)
        stats = PlutoSession.cache_stats()["compiled_exec"]
        assert {"hits", "misses", "uncached", "size"} <= set(stats)
        clear_all_caches()
        cleared = PlutoSession.cache_stats()["compiled_exec"]
        assert cleared["size"] == 0
        assert cleared["hits"] == 0 and cleared["misses"] == 0

"""End-to-end tests of the compiler and controller (Section 6 stack)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.luts import bitcount_lut, binarize_lut
from repro.api.session import PlutoSession
from repro.compiler.dependency_graph import DependencyGraph
from repro.compiler.lowering import PlutoCompiler
from repro.controller.allocation_table import AllocationTable
from repro.controller.executor import PlutoController
from repro.controller.rom import CommandRom
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.commands import CommandType
from repro.dram.geometry import DDR4_8GB
from repro.errors import AllocationError, CompilationError, ExecutionError
from repro.isa.instructions import PlutoOp, PlutoRowAlloc


def _compile_multiply_add(n: int):
    """Build and compile the Figure 5 multiply-and-add program."""
    session = PlutoSession()
    a = session.pluto_malloc(n, 2, "A")
    b = session.pluto_malloc(n, 2, "B")
    c = session.pluto_malloc(n, 4, "C")
    tmp = session.pluto_malloc(n, 4, "tmp")
    out = session.pluto_malloc(n, 8, "out")
    session.api_pluto_mul(a, b, tmp, bit_width=2)
    session.api_pluto_add(c, tmp, out, bit_width=4)
    return PlutoCompiler().compile(session.calls)


class TestDependencyGraph:
    def test_execution_order_respects_dependences(self):
        session = PlutoSession()
        a = session.pluto_malloc(8, 4, "a")
        b = session.pluto_malloc(8, 4, "b")
        t = session.pluto_malloc(8, 8, "t")
        out = session.pluto_malloc(8, 8, "out")
        session.api_pluto_add(a, b, t, bit_width=4)
        session.api_pluto_map(bitcount_lut(8), t, out)
        graph = DependencyGraph(session.calls)
        order = graph.execution_order()
        assert order[0].operation == "add"
        assert order[1].operation == "map"
        assert graph.depth == 2
        assert {v.name for v in graph.external_inputs()} == {"a", "b"}
        assert [v.name for v in graph.outputs()] == ["out"]

    def test_double_assignment_rejected(self):
        session = PlutoSession()
        a = session.pluto_malloc(8, 4, "a")
        b = session.pluto_malloc(8, 4, "b")
        out = session.pluto_malloc(8, 8, "out")
        session.api_pluto_add(a, b, out, bit_width=4)
        session.api_pluto_add(a, b, out, bit_width=4)
        with pytest.raises(CompilationError):
            DependencyGraph(session.calls)


class TestCompiler:
    def test_figure5_program_structure(self):
        compiled = _compile_multiply_add(64)
        listing = compiled.program.listing()
        # The lowering inserts shift + OR alignment before each pluto_op.
        assert listing.count("pluto_op") == 2
        assert listing.count("pluto_bit_shift_l") == 2
        assert listing.count("pluto_or") == 2
        assert compiled.program.count(PlutoOp) == 2
        assert len(compiled.lut_bindings) == 2
        assert {v.name for v in compiled.external_inputs} == {"A", "B", "C"}
        assert [v.name for v in compiled.outputs] == ["out"]
        compiled.program.validate()

    def test_shared_lut_allocated_once(self):
        session = PlutoSession()
        a = session.pluto_malloc(8, 4, "a")
        b = session.pluto_malloc(8, 4, "b")
        c = session.pluto_malloc(8, 4, "c")
        t1 = session.pluto_malloc(8, 8, "t1")
        t2 = session.pluto_malloc(8, 8, "t2")
        session.api_pluto_add(a, b, t1, bit_width=4)
        session.api_pluto_add(a, c, t2, bit_width=4)
        compiled = PlutoCompiler().compile(session.calls)
        # Both additions use the same add4 LUT -> one subarray register.
        assert len(compiled.lut_bindings) == 1

    def test_empty_program_rejected(self):
        with pytest.raises(CompilationError):
            PlutoCompiler().compile([])


class TestAllocationTableAndRom:
    def test_rows_and_lut_subarrays_disjoint(self):
        from repro.isa.registers import RegisterFile

        registers = RegisterFile()
        table = AllocationTable(DDR4_8GB)
        row_register = registers.allocate_row(100_000, 8)
        lut_register = registers.allocate_subarray(256, "x")
        row_allocation = table.bind_row(row_register)
        lut_allocation = table.bind_subarray(lut_register)
        assert row_allocation.subarray != lut_allocation.subarray
        assert row_allocation.num_rows == -(-100_000 // DDR4_8GB.elements_per_row(8))
        assert len(row_allocation.addresses) == row_allocation.num_rows
        # Binding again returns the same placement.
        assert table.bind_row(row_register) == row_allocation
        assert table.rows_in_use == row_allocation.num_rows
        assert table.lut_subarrays_in_use == 1

    def test_oversized_lut_rejected(self):
        from repro.isa.registers import RegisterFile

        registers = RegisterFile()
        table = AllocationTable(DDR4_8GB)
        big = registers.allocate_subarray(1024, "big")
        with pytest.raises(AllocationError):
            table.bind_subarray(big)

    def test_rom_expansion_counts(self):
        from repro.isa.registers import RegisterFile
        from repro.isa.instructions import BitwiseKind, PlutoBitwise, PlutoBitShift, ShiftDirection

        registers = RegisterFile()
        a = registers.allocate_row(8, 8)
        b = registers.allocate_row(8, 8)
        lut = registers.allocate_subarray(16, "bc4")
        rom = CommandRom()
        assert rom.expand(PlutoRowAlloc(a, 8, 8)) == []
        sweep = rom.expand(PlutoOp(a, b, lut, 16, 8))
        assert len(sweep) == 1 and sweep[0].kind is CommandType.ROW_SWEEP
        assert sweep[0].rows == 16
        xor = rom.expand(PlutoBitwise(BitwiseKind.XOR, a, a, b))
        assert len(xor) == 7
        shift = rom.expand(PlutoBitShift(ShiftDirection.LEFT, a, 12))
        assert len(shift) == 5


class TestController:
    @pytest.mark.parametrize("design", list(PlutoDesign))
    def test_multiply_add_end_to_end(self, design, rng):
        n = 48
        compiled = _compile_multiply_add(n)
        a = rng.integers(0, 4, n)
        b = rng.integers(0, 4, n)
        c = rng.integers(0, 16, n)
        controller = PlutoController(PlutoEngine(PlutoConfig(design=design)))
        result = controller.execute(compiled, {"A": a, "B": b, "C": c})
        assert np.array_equal(result.outputs["out"], a * b + c)
        assert result.lut_queries == 2
        assert result.latency_ns > 0
        assert result.energy_nj > 0

    def test_unary_map_program(self, rng):
        session = PlutoSession()
        pixels = session.pluto_malloc(100, 8, "pixels")
        out = session.pluto_malloc(100, 8, "binary")
        session.api_pluto_map(binarize_lut(127), pixels, out)
        compiled = PlutoCompiler().compile(session.calls)
        data = rng.integers(0, 256, 100)
        result = PlutoController().execute(compiled, {"pixels": data})
        expected = np.where(data > 127, 255, 0)
        assert np.array_equal(result.outputs["binary"], expected)

    def test_bitwise_program(self, rng):
        session = PlutoSession()
        a = session.pluto_malloc(64, 8, "a")
        b = session.pluto_malloc(64, 8, "b")
        out = session.pluto_malloc(64, 8, "out")
        session.api_pluto_bitwise("xor", a, b, out)
        compiled = PlutoCompiler().compile(session.calls)
        x = rng.integers(0, 256, 64)
        y = rng.integers(0, 256, 64)
        result = PlutoController().execute(compiled, {"a": x, "b": y})
        assert np.array_equal(result.outputs["out"], x ^ y)

    def test_missing_input_rejected(self):
        compiled = _compile_multiply_add(8)
        with pytest.raises(ExecutionError):
            PlutoController().execute(compiled, {"A": np.zeros(8, dtype=int)})

    def test_wrong_sized_input_rejected(self):
        compiled = _compile_multiply_add(8)
        inputs = {
            "A": np.zeros(4, dtype=int),
            "B": np.zeros(8, dtype=int),
            "C": np.zeros(8, dtype=int),
        }
        with pytest.raises(ExecutionError):
            PlutoController().execute(compiled, inputs)

    def test_out_of_range_input_rejected(self):
        compiled = _compile_multiply_add(8)
        inputs = {
            "A": np.full(8, 7),  # A is a 2-bit vector
            "B": np.zeros(8, dtype=int),
            "C": np.zeros(8, dtype=int),
        }
        with pytest.raises(ExecutionError):
            PlutoController().execute(compiled, inputs)

    def test_trace_contains_row_sweeps_and_loads(self, rng):
        compiled = _compile_multiply_add(16)
        controller = PlutoController()
        result = controller.execute(
            compiled,
            {
                "A": rng.integers(0, 4, 16),
                "B": rng.integers(0, 4, 16),
                "C": rng.integers(0, 16, 16),
            },
        )
        assert result.trace.count(CommandType.ROW_SWEEP) == 2
        assert result.trace.count(CommandType.LISA_RBM) >= 2  # LUT loads + moves

    def test_gsa_latency_higher_than_gmc(self, rng):
        n = 32
        inputs = {
            "A": rng.integers(0, 4, n),
            "B": rng.integers(0, 4, n),
            "C": rng.integers(0, 16, n),
        }
        results = {}
        for design in (PlutoDesign.GSA, PlutoDesign.GMC):
            compiled = _compile_multiply_add(n)
            controller = PlutoController(PlutoEngine(PlutoConfig(design=design)))
            results[design] = controller.execute(compiled, dict(inputs)).latency_ns
        assert results[PlutoDesign.GSA] > results[PlutoDesign.GMC]

"""Tests for LUT construction, match logic, FF buffer, and the LUT query."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import DESIGN_PROPERTIES, PlutoDesign
from repro.core.ff_buffer import FFBuffer
from repro.core.lut import (
    LookupTable,
    concat_binary_lut,
    lut_from_function,
    replicate_lut_rows,
    sequence_lut,
)
from repro.core.match_logic import MatchLogic
from repro.core.subarray import PlutoSubarray
from repro.dram.geometry import DRAMGeometry
from repro.errors import ConfigurationError, LUTError, SubarrayStateError
from repro.utils.bitops import unpack_elements


class TestLookupTable:
    def test_prime_example_from_paper(self):
        lut = sequence_lut([2, 3, 5, 7], element_bits=4, name="primes")
        # The paper's example query: the {2nd, 1st, 2nd, 4th} primes.
        result = lut.query(np.array([1, 0, 1, 3]))
        assert result.tolist() == [3, 2, 3, 7]

    def test_from_function(self):
        lut = lut_from_function(lambda x: x ^ 0xF, 4, 4)
        assert lut.num_entries == 16
        assert lut[0] == 0xF
        assert lut[0xF] == 0

    def test_size_mismatch_rejected(self):
        with pytest.raises(LUTError):
            LookupTable(values=(1, 2, 3), index_bits=2, element_bits=4)

    def test_value_overflow_rejected(self):
        with pytest.raises(LUTError):
            LookupTable(values=(0, 300), index_bits=1, element_bits=8)
        with pytest.raises(LUTError):
            lut_from_function(lambda x: 1 << 10, 2, 4)

    def test_query_out_of_range_rejected(self, square_lut):
        with pytest.raises(LUTError):
            square_lut.query(np.array([256]))

    def test_concat_binary_lut_addition(self):
        lut = concat_binary_lut(lambda a, b: a + b, 4, 4, 8, name="add4")
        assert lut[(3 << 4) | 9] == 12
        assert lut[(15 << 4) | 15] == 30

    def test_rows_required_checks_subarray_capacity(self, square_lut, small_geometry):
        with pytest.raises(LUTError):
            square_lut.rows_required(small_geometry)  # 256 entries > 64 rows

    def test_replicated_rows_contain_copies(self, small_geometry):
        lut = sequence_lut([5, 9], element_bits=8)
        rows = replicate_lut_rows(lut, small_geometry)
        assert rows.shape == (2, small_geometry.row_size_bytes)
        elements = unpack_elements(rows[1], 8, small_geometry.row_size_bytes)
        assert np.all(elements == 9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_identity_lut_property(self, bits):
        lut = lut_from_function(lambda x: x, bits, bits)
        indices = np.arange(lut.num_entries, dtype=np.uint64)
        assert np.array_equal(lut.query(indices), indices)


class TestMatchLogic:
    def test_exact_match_positions(self):
        logic = MatchLogic(num_comparators=6, index_bits=4)
        result = logic.compare(np.array([1, 0, 1, 3, 2, 1]), 1)
        assert result.matches.tolist() == [True, False, True, False, False, True]
        assert result.match_count == 3

    def test_every_input_matches_exactly_once_over_full_sweep(self, rng):
        logic = MatchLogic(num_comparators=32, index_bits=4)
        indices = rng.integers(0, 16, 32).astype(np.uint64)
        histogram = logic.match_histogram(indices, 16)
        assert histogram.sum() == 32

    def test_wrong_width_rejected(self):
        logic = MatchLogic(num_comparators=4, index_bits=4)
        with pytest.raises(ConfigurationError):
            logic.compare(np.array([1, 2]), 0)

    def test_comparison_counter(self):
        logic = MatchLogic(num_comparators=8, index_bits=4)
        logic.compare(np.zeros(8, dtype=np.uint64), 0)
        logic.compare(np.zeros(8, dtype=np.uint64), 1)
        assert logic.comparisons == 16


class TestFFBuffer:
    def test_capture_on_matchlines(self):
        buffer = FFBuffer(num_elements=4, element_bits=8)
        buffer.capture(0xAB, np.array([True, False, False, True]))
        assert buffer.values.tolist() == [0xAB, 0, 0, 0xAB]
        assert not buffer.complete
        buffer.capture(0x11, np.array([False, True, True, False]))
        assert buffer.complete

    def test_capture_vector_per_position_values(self):
        buffer = FFBuffer(num_elements=3, element_bits=8)
        buffer.capture_vector(
            np.array([1, 2, 3], dtype=np.uint64), np.array([True, True, False])
        )
        assert buffer.values.tolist() == [1, 2, 0]

    def test_reset_clears_state(self):
        buffer = FFBuffer(num_elements=2, element_bits=4)
        buffer.capture(5, np.array([True, True]))
        buffer.reset()
        assert not buffer.captured_mask.any()
        assert buffer.values.tolist() == [0, 0]

    def test_to_row_packs_elements(self):
        buffer = FFBuffer(num_elements=4, element_bits=8)
        buffer.capture_vector(
            np.array([1, 2, 3, 4], dtype=np.uint64), np.ones(4, dtype=bool)
        )
        row = buffer.to_row(8)
        assert np.array_equal(unpack_elements(row, 8, 4), np.array([1, 2, 3, 4]))

    def test_shape_validation(self):
        buffer = FFBuffer(num_elements=4, element_bits=8)
        with pytest.raises(ConfigurationError):
            buffer.capture(1, np.array([True]))


class TestPlutoSubarrayQuery:
    @pytest.fixture
    def geometry(self) -> DRAMGeometry:
        return DRAMGeometry(
            bank_groups=1,
            banks_per_group=1,
            subarrays_per_bank=2,
            rows_per_subarray=64,
            row_size_bytes=64,
        )

    def test_query_matches_host_reference(self, geometry, any_design, rng):
        lut = lut_from_function(lambda x: (3 * x + 1) & 0x3F, 6, 6, name="affine")
        subarray = PlutoSubarray(geometry, any_design)
        subarray.load_lut(lut)
        indices = rng.integers(0, 64, subarray.elements_per_query()).astype(np.uint64)
        values = subarray.query_indices(indices)
        assert np.array_equal(values, lut.query(indices))

    def test_gsa_requires_reload_between_queries(self, geometry, rng):
        lut = lut_from_function(lambda x: x, 4, 4)
        subarray = PlutoSubarray(geometry, PlutoDesign.GSA)
        subarray.load_lut(lut)
        indices = rng.integers(0, 16, 8).astype(np.uint64)
        subarray.query_indices(indices)
        assert not subarray.lut_valid
        with pytest.raises(SubarrayStateError):
            subarray.query_indices(indices)
        subarray.reload_lut()
        assert np.array_equal(subarray.query_indices(indices), indices)

    def test_non_destructive_designs_keep_lut(self, geometry, rng):
        for design in (PlutoDesign.BSA, PlutoDesign.GMC):
            lut = lut_from_function(lambda x: x ^ 0x5, 4, 4)
            subarray = PlutoSubarray(geometry, design)
            subarray.load_lut(lut)
            indices = rng.integers(0, 16, 8).astype(np.uint64)
            subarray.query_indices(indices)
            assert subarray.lut_valid
            assert np.array_equal(subarray.query_indices(indices), lut.query(indices))

    def test_out_of_range_index_rejected(self, geometry):
        lut = lut_from_function(lambda x: x, 3, 3)
        subarray = PlutoSubarray(geometry, PlutoDesign.BSA)
        subarray.load_lut(lut)
        with pytest.raises(LUTError):
            subarray.query_indices(np.array([9], dtype=np.uint64))

    def test_query_without_lut_rejected(self, geometry):
        subarray = PlutoSubarray(geometry, PlutoDesign.BSA)
        with pytest.raises(LUTError):
            subarray.query_indices(np.array([0], dtype=np.uint64))

    def test_too_many_indices_rejected(self, geometry):
        lut = lut_from_function(lambda x: x, 4, 4)
        subarray = PlutoSubarray(geometry, PlutoDesign.BSA)
        subarray.load_lut(lut)
        capacity = subarray.elements_per_query()
        with pytest.raises(LUTError):
            subarray.query_indices(np.zeros(capacity + 1, dtype=np.uint64))

    def test_sweep_statistics(self, geometry, rng):
        lut = lut_from_function(lambda x: x, 4, 4)
        subarray = PlutoSubarray(geometry, PlutoDesign.BSA)
        subarray.load_lut(lut)
        from repro.utils.bitops import pack_elements

        capacity = subarray.elements_per_query()
        indices = rng.integers(0, 16, capacity).astype(np.uint64)
        row = pack_elements(indices, 4, geometry.row_size_bytes)
        _, statistics = subarray.query_row(row)
        assert statistics.rows_activated == 16
        assert statistics.matches == capacity
        assert statistics.comparisons == 16 * capacity

    def test_lut_that_does_not_fit_rejected(self, geometry):
        lut = lut_from_function(lambda x: x, 8, 8)  # 256 rows > 64
        subarray = PlutoSubarray(geometry, PlutoDesign.BSA)
        with pytest.raises(LUTError):
            subarray.load_lut(lut)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=10**6))
    def test_query_equals_reference_property(self, index_bits, seed):
        geometry = DRAMGeometry(
            bank_groups=1,
            banks_per_group=1,
            subarrays_per_bank=1,
            rows_per_subarray=32,
            row_size_bytes=32,
        )
        rng = np.random.default_rng(seed)
        table = rng.integers(0, 1 << index_bits, 1 << index_bits)
        lut = LookupTable(
            values=tuple(int(v) for v in table),
            index_bits=index_bits,
            element_bits=index_bits,
        )
        subarray = PlutoSubarray(geometry, PlutoDesign.GMC)
        subarray.load_lut(lut)
        indices = rng.integers(0, 1 << index_bits, 16).astype(np.uint64)
        assert np.array_equal(subarray.query_indices(indices), lut.query(indices))

    def test_design_properties_table(self):
        assert DESIGN_PROPERTIES[PlutoDesign.GSA].destructive_reads
        assert not DESIGN_PROPERTIES[PlutoDesign.BSA].destructive_reads
        assert DESIGN_PROPERTIES[PlutoDesign.BSA].uses_ff_buffer
        assert DESIGN_PROPERTIES[PlutoDesign.GMC].throughput_class == "high"

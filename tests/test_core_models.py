"""Tests for the analytical cost model, area model, recipes, and the engine."""

from __future__ import annotations

import pytest

from repro.core.analytical import PlutoCostModel
from repro.core.area import AreaModel
from repro.core.designs import PlutoDesign
from repro.core.engine import DDR4, THREE_DS, PlutoConfig, PlutoEngine
from repro.core.recipe import WorkloadRecipe
from repro.dram.energy import DDR4_ENERGY
from repro.dram.timing import DDR4_2400
from repro.errors import ConfigurationError


@pytest.fixture
def cost_model() -> PlutoCostModel:
    return PlutoCostModel(DDR4_2400, DDR4_ENERGY, 8192, rows_per_subarray=512)


class TestCostModel:
    def test_table1_latency_formulas(self, cost_model):
        n = 128
        timing = DDR4_2400
        assert cost_model.query_latency_ns(PlutoDesign.BSA, n) == pytest.approx(
            (timing.t_rcd + timing.t_rp) * n
        )
        assert cost_model.query_latency_ns(PlutoDesign.GMC, n) == pytest.approx(
            timing.t_rcd * n + timing.t_rp
        )
        gsa = cost_model.query_latency_ns(PlutoDesign.GSA, n)
        assert gsa == pytest.approx(
            cost_model.lisa_hop_latency_ns * n + timing.t_rcd * n + timing.t_rp
        )

    def test_table1_energy_formulas(self, cost_model):
        n = 64
        energy = DDR4_ENERGY
        assert cost_model.query_energy_nj(PlutoDesign.BSA, n) == pytest.approx(
            (energy.e_act + energy.e_pre) * n
        )
        assert cost_model.query_energy_nj(PlutoDesign.GMC, n) == pytest.approx(
            energy.e_act * n + energy.e_pre
        )
        assert cost_model.query_energy_nj(PlutoDesign.GSA, n) == pytest.approx(
            energy.e_lisa_rbm * n + energy.e_act * n + energy.e_pre
        )

    def test_design_ordering_from_paper(self, cost_model):
        """GMC is fastest and most efficient; GSA is slowest and least efficient."""
        n = 256
        latencies = {d: cost_model.query_latency_ns(d, n) for d in PlutoDesign}
        energies = {d: cost_model.query_energy_nj(d, n) for d in PlutoDesign}
        assert latencies[PlutoDesign.GMC] < latencies[PlutoDesign.BSA] < latencies[PlutoDesign.GSA]
        assert energies[PlutoDesign.GMC] < energies[PlutoDesign.BSA] < energies[PlutoDesign.GSA]

    def test_gsa_vs_bsa_sweep_ratio_approaches_two(self, cost_model):
        """Footnote 3: the BSA/GSA sweep-latency ratio approaches 2 for large N."""
        ratio = cost_model.sweep_latency_ns(
            PlutoDesign.BSA, 1024
        ) / cost_model.sweep_latency_ns(PlutoDesign.GSA, 1024)
        assert 1.8 < ratio <= 2.0

    def test_throughput_decreases_with_lut_size(self, cost_model):
        small = cost_model.throughput_queries_per_s(PlutoDesign.BSA, 16, 8)
        large = cost_model.throughput_queries_per_s(PlutoDesign.BSA, 256, 8)
        assert small > large

    def test_large_lut_partitioning_caps_latency(self, cost_model):
        capped = cost_model.query_latency_ns(PlutoDesign.BSA, 65536)
        assert capped == pytest.approx(cost_model.query_latency_ns(PlutoDesign.BSA, 512))
        # Energy still grows with the full LUT size (Section 5.6).
        assert cost_model.query_energy_nj(PlutoDesign.BSA, 65536) > cost_model.query_energy_nj(
            PlutoDesign.BSA, 512
        )

    def test_auxiliary_costs(self, cost_model):
        assert cost_model.bitwise_latency_ns(4) == pytest.approx(4 * 42.48, rel=1e-3)
        assert cost_model.shift_latency_ns(0) == 0.0
        assert cost_model.move_latency_ns(2) == pytest.approx(2 * cost_model.lisa_hop_latency_ns)
        with pytest.raises(ConfigurationError):
            cost_model.query_latency_ns(PlutoDesign.BSA, 0)


class TestAreaModel:
    def test_overheads_match_table5(self):
        model = AreaModel()
        assert model.overhead(PlutoDesign.GSA) == pytest.approx(0.102, abs=0.005)
        assert model.overhead(PlutoDesign.BSA) == pytest.approx(0.167, abs=0.005)
        assert model.overhead(PlutoDesign.GMC) == pytest.approx(0.231, abs=0.005)

    def test_component_totals_match_table5(self):
        model = AreaModel()
        table = model.table5()
        assert table["Base DRAM"].total == pytest.approx(70.23, abs=0.1)
        assert table["pLUTo-GSA"].total == pytest.approx(77.44, abs=0.2)
        assert table["pLUTo-BSA"].total == pytest.approx(82.00, abs=0.2)
        assert table["pLUTo-GMC"].total == pytest.approx(86.47, abs=0.2)

    def test_only_gmc_modifies_the_cell(self):
        model = AreaModel()
        base = model.baseline.dram_cells
        assert model.breakdown(PlutoDesign.BSA).dram_cells == pytest.approx(base)
        assert model.breakdown(PlutoDesign.GSA).dram_cells == pytest.approx(base)
        assert model.breakdown(PlutoDesign.GMC).dram_cells > base

    def test_area_ordering(self):
        model = AreaModel()
        assert (
            model.overhead(PlutoDesign.GSA)
            < model.overhead(PlutoDesign.BSA)
            < model.overhead(PlutoDesign.GMC)
        )


class TestRecipe:
    def test_valid_recipe(self):
        recipe = WorkloadRecipe(name="t", element_bits=8, sweeps_per_row=(256,))
        assert recipe.total_sweep_rows == 256
        assert recipe.uses_lut_queries
        assert recipe.effective_kernel_ops == recipe.cpu_ops_per_element

    def test_kernel_ops_override(self):
        recipe = WorkloadRecipe(
            name="t", element_bits=8, cpu_ops_per_element=10.0, kernel_ops_per_element=2.0
        )
        assert recipe.effective_kernel_ops == 2.0

    def test_invalid_recipes_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadRecipe(name="t", element_bits=0)
        with pytest.raises(ConfigurationError):
            WorkloadRecipe(name="t", element_bits=8, sweeps_per_row=(0,))
        with pytest.raises(ConfigurationError):
            WorkloadRecipe(name="t", element_bits=8, serial_fraction=1.0)
        with pytest.raises(ConfigurationError):
            WorkloadRecipe(name="t", element_bits=8, simd_efficiency=0.0)


class TestEngine:
    def test_default_parallelism_matches_table3(self):
        assert PlutoConfig(memory=DDR4).effective_subarrays == 16
        assert PlutoConfig(memory=THREE_DS).effective_subarrays == 512

    def test_config_label(self):
        assert PlutoConfig(design=PlutoDesign.BSA).label == "pLUTo-BSA"
        assert (
            PlutoConfig(design=PlutoDesign.GMC, memory=THREE_DS).label == "pLUTo-GMC-3DS"
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PlutoConfig(memory="HBM9")
        with pytest.raises(ConfigurationError):
            PlutoConfig(subarrays=0)

    def test_execute_scales_latency_not_energy_with_parallelism(self):
        recipe = WorkloadRecipe(name="t", element_bits=8, sweeps_per_row=(256,))
        few = PlutoEngine(PlutoConfig(subarrays=4)).execute(recipe, 1 << 20)
        many = PlutoEngine(PlutoConfig(subarrays=64)).execute(recipe, 1 << 20)
        assert few.latency_ns > many.latency_ns
        assert few.energy_nj == pytest.approx(many.energy_nj)

    def test_rows_for_ceiling_division(self, bsa_engine):
        recipe = WorkloadRecipe(name="t", element_bits=8, sweeps_per_row=(256,))
        per_row = bsa_engine.cost_model.elements_per_row(8)
        assert bsa_engine.rows_for(recipe, per_row) == 1
        assert bsa_engine.rows_for(recipe, per_row + 1) == 2

    def test_gsa_slower_but_not_costlier_to_load(self):
        recipe = WorkloadRecipe(
            name="t", element_bits=8, sweeps_per_row=(256,), luts_loaded=(256,)
        )
        elements = 1 << 22
        reports = {
            design: PlutoEngine(PlutoConfig(design=design)).execute(recipe, elements)
            for design in PlutoDesign
        }
        assert reports[PlutoDesign.GMC].latency_ns < reports[PlutoDesign.BSA].latency_ns
        assert reports[PlutoDesign.BSA].latency_ns < reports[PlutoDesign.GSA].latency_ns
        # The one-time LUT load cost is identical across designs.
        loads = {r.lut_load_latency_ns for r in reports.values()}
        assert len(loads) == 1

    def test_3ds_faster_than_ddr4(self):
        recipe = WorkloadRecipe(name="t", element_bits=8, sweeps_per_row=(256,))
        ddr4 = PlutoEngine(PlutoConfig(memory=DDR4)).execute(recipe, 1 << 22)
        threeds = PlutoEngine(PlutoConfig(memory=THREE_DS)).execute(recipe, 1 << 22)
        assert threeds.latency_ns < ddr4.latency_ns

    def test_static_energy_included_in_total(self, bsa_engine):
        recipe = WorkloadRecipe(name="t", element_bits=8, sweeps_per_row=(256,))
        report = bsa_engine.execute(recipe, 1 << 20)
        assert report.static_energy_nj > 0
        assert report.total_energy_nj > report.energy_nj

    def test_functional_subarray_creation(self, bsa_engine, square_lut):
        subarray = bsa_engine.create_subarray(square_lut)
        assert subarray.lut is square_lut

    def test_throughput_property(self, bsa_engine):
        recipe = WorkloadRecipe(name="t", element_bits=8, sweeps_per_row=(256,))
        report = bsa_engine.execute(recipe, 1 << 20)
        assert report.throughput_elements_per_s > 0

"""Tests for the functional DRAM models: subarray, bank, module, commands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandTrace, CommandType
from repro.dram.energy import DDR4_ENERGY
from repro.dram.module import DRAMModule
from repro.dram.refresh import RefreshModel, RowStepper
from repro.dram.subarray import Subarray
from repro.dram.timing import DDR4_2400
from repro.errors import AddressError, ConfigurationError, SubarrayStateError


class TestSubarray:
    def test_activate_reads_stored_row(self, small_geometry, rng):
        subarray = Subarray(small_geometry)
        data = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        subarray.load_row(3, data)
        assert np.array_equal(subarray.activate(3), data)

    def test_activate_requires_precharge_between_rows(self, small_geometry):
        subarray = Subarray(small_geometry)
        subarray.activate(0)
        with pytest.raises(SubarrayStateError):
            subarray.activate(1)
        subarray.precharge()
        subarray.activate(1)

    def test_write_buffer_updates_open_row(self, small_geometry):
        subarray = Subarray(small_geometry)
        subarray.activate(5)
        new_data = np.full(small_geometry.row_size_bytes, 0xAB, dtype=np.uint8)
        subarray.write_buffer(new_data)
        subarray.precharge()
        assert np.array_equal(subarray.peek_row(5), new_data)

    def test_read_buffer_requires_open_row(self, small_geometry):
        subarray = Subarray(small_geometry)
        with pytest.raises(SubarrayStateError):
            subarray.read_buffer()

    def test_non_restoring_activation_destroys_row(self, small_geometry, rng):
        subarray = Subarray(small_geometry)
        data = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        subarray.load_row(2, data)
        subarray.activate(2, restore=False)
        subarray.precharge()
        assert not subarray.row_is_valid(2)
        with pytest.raises(SubarrayStateError):
            subarray.activate(2)
        # Rewriting the row makes it usable again.
        subarray.load_row(2, data)
        assert subarray.row_is_valid(2)

    def test_precharge_when_already_precharged_is_legal(self, small_geometry):
        subarray = Subarray(small_geometry)
        subarray.precharge()
        assert subarray.is_precharged

    def test_load_rows_bulk(self, small_geometry, rng):
        subarray = Subarray(small_geometry)
        block = rng.integers(0, 256, (4, small_geometry.row_size_bytes)).astype(np.uint8)
        subarray.load_rows(10, block)
        for offset in range(4):
            assert np.array_equal(subarray.peek_row(10 + offset), block[offset])

    def test_out_of_range_row_rejected(self, small_geometry):
        subarray = Subarray(small_geometry)
        with pytest.raises(ConfigurationError):
            subarray.activate(small_geometry.rows_per_subarray)

    def test_activation_counter(self, small_geometry):
        subarray = Subarray(small_geometry)
        for row in range(5):
            subarray.activate(row)
            subarray.precharge()
        assert subarray.activation_count == 5
        assert subarray.precharge_count == 5


class TestBankAndModule:
    def test_bank_read_write_row(self, small_geometry, rng):
        bank = Bank(small_geometry)
        data = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        bank.write_row(1, 7, data)
        assert np.array_equal(bank.read_row(1, 7), data)

    def test_bank_tracks_open_subarrays(self, small_geometry):
        bank = Bank(small_geometry)
        bank.subarray(0).activate(0)
        bank.subarray(2).activate(5)
        assert bank.open_subarrays == [0, 2]
        bank.precharge_all()
        assert bank.open_subarrays == []

    def test_module_byte_addressed_roundtrip(self, small_geometry, rng):
        module = DRAMModule(small_geometry, instantiate_banks=2)
        payload = rng.integers(0, 256, 3 * small_geometry.row_size_bytes + 13).astype(np.uint8)
        module.write_bytes(41, payload)
        assert np.array_equal(module.read_bytes(41, payload.size), payload)

    def test_module_rejects_unmaterialised_bank(self, small_geometry):
        module = DRAMModule(small_geometry, instantiate_banks=1)
        with pytest.raises(AddressError):
            module.bank(1)

    def test_module_activation_statistics(self, small_geometry):
        module = DRAMModule(small_geometry, instantiate_banks=1)
        module.write_bytes(0, np.arange(10, dtype=np.uint8))
        module.read_bytes(0, 10)
        assert module.total_activations >= 1


class TestCommandTrace:
    def test_act_pre_costs(self):
        trace = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        trace.add_activate(row=3)
        trace.add_precharge()
        assert trace.total_latency_ns == pytest.approx(DDR4_2400.t_rcd + DDR4_2400.t_rp)
        assert trace.total_energy_nj == pytest.approx(
            DDR4_ENERGY.e_act + DDR4_ENERGY.e_pre
        )

    def test_row_sweep_override(self):
        trace = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        trace.add_row_sweep(1000.0, 50.0, rows=16)
        assert trace.total_latency_ns == pytest.approx(1000.0)
        assert trace.total_energy_nj == pytest.approx(50.0)
        assert trace.count(CommandType.ROW_SWEEP) == 1

    def test_default_row_sweep_cost_scales_with_rows(self):
        trace = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        trace.add(CommandType.ROW_SWEEP, rows=4)
        assert trace.total_latency_ns == pytest.approx(4 * DDR4_2400.act_pre_cycle)

    def test_merge_accumulates(self):
        first = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        first.add_activate()
        second = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        second.add_precharge()
        first.merge(second)
        assert len(first) == 2
        assert first.total_latency_ns == pytest.approx(
            DDR4_2400.t_rcd + DDR4_2400.t_rp
        )

    def test_extend_with_prebuilt_commands(self):
        trace = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        trace.extend([Command(CommandType.ACT), Command(CommandType.PRE)])
        assert trace.count(CommandType.ACT) == 1
        assert trace.count(CommandType.PRE) == 1


class TestRefreshAndStepper:
    def test_refresh_overhead_fraction(self):
        model = RefreshModel(DDR4_2400)
        assert 0.0 < model.overhead_fraction < 0.1

    def test_refresh_inflates_latency(self):
        model = RefreshModel(DDR4_2400)
        assert model.inflate_latency(1000.0) > 1000.0

    def test_refreshes_during_interval(self):
        model = RefreshModel(DDR4_2400)
        assert model.refreshes_during(10 * DDR4_2400.t_refi) == 10

    def test_row_stepper_order(self):
        stepper = RowStepper(64)
        assert stepper.sweep_order(4, 4) == [4, 5, 6, 7]

    def test_row_stepper_bounds(self):
        stepper = RowStepper(16)
        with pytest.raises(ConfigurationError):
            stepper.sweep_order(10, 8)
        with pytest.raises(ConfigurationError):
            stepper.sweep_order(0, 0)

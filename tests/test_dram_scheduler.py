"""Tests for the timing-aware command scheduler."""

from __future__ import annotations

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.scheduler import CommandScheduler
from repro.dram.timing import DDR4_2400, TimingParameters
from repro.errors import TimingViolationError


def _act(bank: int, row: int = 0) -> Command:
    return Command(CommandType.ACT, bank=bank, row=row)


def _pre(bank: int) -> Command:
    return Command(CommandType.PRE, bank=bank)


class TestBasicSequencing:
    def test_act_then_pre_elapsed(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(_act(0))
        scheduler.issue(_pre(0))
        # PRE must respect tRAS after the ACT, then takes tRP.
        assert scheduler.elapsed_ns == pytest.approx(
            DDR4_2400.t_ras + DDR4_2400.t_rp
        )

    def test_read_requires_open_row(self):
        scheduler = CommandScheduler(DDR4_2400)
        with pytest.raises(TimingViolationError):
            scheduler.issue(Command(CommandType.RD, bank=0))

    def test_double_activate_same_bank_rejected(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(_act(0, 1))
        with pytest.raises(TimingViolationError):
            scheduler.issue(_act(0, 2))

    def test_unknown_bank_rejected(self):
        scheduler = CommandScheduler(DDR4_2400, num_banks=2)
        with pytest.raises(TimingViolationError):
            scheduler.issue(_act(5))


class TestTfawEnforcement:
    def test_fifth_activation_delayed_by_tfaw(self):
        # Use a huge tFAW so the delay is unambiguous.
        timing = TimingParameters(t_faw=1000.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        issue_times = [scheduler.issue(_act(bank)).issue_time_ns for bank in range(5)]
        assert issue_times[4] >= issue_times[0] + 1000.0

    def test_no_tfaw_constraint_when_zero(self):
        timing = TimingParameters(t_faw=0.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        issue_times = [scheduler.issue(_act(bank)).issue_time_ns for bank in range(8)]
        # Only the command-bus serialisation (one clock per command) remains.
        assert issue_times[-1] - issue_times[0] <= 8 * timing.clock_ns

    def test_row_sweep_counts_toward_tfaw(self):
        timing = TimingParameters(t_faw=500.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        scheduler.issue(Command(CommandType.ROW_SWEEP, bank=0, rows=4))
        follow_up = scheduler.issue(_act(1))
        assert follow_up.issue_time_ns >= 500.0


class TestCompoundCommands:
    def test_rowclone_duration(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(Command(CommandType.ROWCLONE, bank=0))
        assert scheduler.elapsed_ns == pytest.approx(
            2 * DDR4_2400.t_rcd + DDR4_2400.t_rp
        )

    def test_lisa_duration(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(Command(CommandType.LISA_RBM, bank=0))
        assert scheduler.elapsed_ns == pytest.approx(DDR4_2400.t_rcd + DDR4_2400.t_rp)

    def test_refresh_duration(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(Command(CommandType.REF, bank=0))
        assert scheduler.elapsed_ns == pytest.approx(DDR4_2400.t_rfc)

    def test_issue_all_returns_schedule(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduled = scheduler.issue_all([_act(0), _pre(0), _act(0, 5)])
        assert len(scheduled) == 3
        assert len(scheduler.schedule) == 3
        assert scheduled[2].issue_time_ns > scheduled[0].issue_time_ns

    def test_parallel_banks_overlap(self):
        scheduler = CommandScheduler(DDR4_2400)
        first = scheduler.issue(_act(0))
        second = scheduler.issue(_act(1))
        # The second bank's ACT only waits for tRRD, not for the first
        # bank's full activation.
        assert second.issue_time_ns - first.issue_time_ns == pytest.approx(
            DDR4_2400.t_rrd
        )

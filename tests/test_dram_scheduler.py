"""Tests for the timing-aware command scheduler."""

from __future__ import annotations

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.scheduler import (
    CommandScheduler,
    activation_count,
    tfaw_lower_bound_ns,
)
from repro.dram.timing import DDR4_2400, TimingParameters
from repro.errors import TimingViolationError


def _act(bank: int, row: int = 0) -> Command:
    return Command(CommandType.ACT, bank=bank, row=row)


def _pre(bank: int) -> Command:
    return Command(CommandType.PRE, bank=bank)


class TestBasicSequencing:
    def test_act_then_pre_elapsed(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(_act(0))
        scheduler.issue(_pre(0))
        # PRE must respect tRAS after the ACT, then takes tRP.
        assert scheduler.elapsed_ns == pytest.approx(
            DDR4_2400.t_ras + DDR4_2400.t_rp
        )

    def test_read_requires_open_row(self):
        scheduler = CommandScheduler(DDR4_2400)
        with pytest.raises(TimingViolationError):
            scheduler.issue(Command(CommandType.RD, bank=0))

    def test_double_activate_same_bank_rejected(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(_act(0, 1))
        with pytest.raises(TimingViolationError):
            scheduler.issue(_act(0, 2))

    def test_unknown_bank_rejected(self):
        scheduler = CommandScheduler(DDR4_2400, num_banks=2)
        with pytest.raises(TimingViolationError):
            scheduler.issue(_act(5))


class TestTfawEnforcement:
    def test_fifth_activation_delayed_by_tfaw(self):
        # Use a huge tFAW so the delay is unambiguous.
        timing = TimingParameters(t_faw=1000.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        issue_times = [scheduler.issue(_act(bank)).issue_time_ns for bank in range(5)]
        assert issue_times[4] >= issue_times[0] + 1000.0

    def test_no_tfaw_constraint_when_zero(self):
        timing = TimingParameters(t_faw=0.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        issue_times = [scheduler.issue(_act(bank)).issue_time_ns for bank in range(8)]
        # Only the command-bus serialisation (one clock per command) remains.
        assert issue_times[-1] - issue_times[0] <= 8 * timing.clock_ns

    def test_row_sweep_counts_toward_tfaw(self):
        timing = TimingParameters(t_faw=500.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        scheduler.issue(Command(CommandType.ROW_SWEEP, bank=0, rows=4))
        follow_up = scheduler.issue(_act(1))
        assert follow_up.issue_time_ns >= 500.0

    def test_lisa_load_activations_respect_tfaw(self):
        """Multi-row LUT loads cannot slip inside a closed tFAW window."""
        timing = TimingParameters(t_faw=1000.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        scheduler.issue(Command(CommandType.ROW_SWEEP, bank=0, rows=4))
        lisa = scheduler.issue(Command(CommandType.LISA_RBM, bank=1, rows=4))
        assert lisa.issue_time_ns >= 1000.0

    def test_compound_commands_respect_tfaw(self):
        timing = TimingParameters(t_faw=1000.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing)
        for bank in range(4):
            scheduler.issue(_act(bank))
        tra = scheduler.issue(Command(CommandType.TRA, bank=4))
        assert tra.issue_time_ns >= 1000.0

    def test_recent_acts_deque_trims_at_16_entries(self):
        """The sliding window keeps only the 16 newest activations.

        Only ``_recent_acts[-4]`` matters for the 4-activation window, so
        trimming must never drop an entry that can still constrain an
        issue time — after a 100-activation sweep the deque holds exactly
        16 entries and the 4th-newest still enforces tFAW on the next ACT.
        """
        timing = TimingParameters(t_faw=1000.0, t_rrd=0.0)
        scheduler = CommandScheduler(timing, sweep_act_interval_ns=0.0)
        scheduler.issue(Command(CommandType.ROW_SWEEP, bank=0, rows=100))
        assert len(scheduler._recent_acts) == 16
        fourth_newest = scheduler._recent_acts[-4]
        follow_up = scheduler.issue(_act(1))
        assert follow_up.issue_time_ns >= fourth_newest + 1000.0

    def test_back_to_back_row_sweeps_across_banks(self):
        """Sweeps on different banks serialise only through tRRD/tFAW.

        With tFAW disabled the second bank's sweep starts one tRRD after
        the first sweep's final activation (75 ns); with a 200 ns window
        the first sweep is internally throttled (activations at 0, 10,
        20, 30, then 200, 210, 220, 230) and the second sweep's first
        activation must trail the window opened at 200 ns, landing at
        400 ns with its own tail at 640 ns.
        """
        relaxed = TimingParameters(t_faw=0.0, t_rrd=5.0, clock_ns=0.5)
        scheduler = CommandScheduler(relaxed, sweep_act_interval_ns=10.0)
        first = scheduler.issue(Command(CommandType.ROW_SWEEP, bank=0, rows=8))
        second = scheduler.issue(Command(CommandType.ROW_SWEEP, bank=1, rows=8))
        assert first.issue_time_ns == 0.0
        assert second.issue_time_ns == pytest.approx(75.0)
        assert scheduler.elapsed_ns == pytest.approx(155.0)

        throttled = TimingParameters(t_faw=200.0, t_rrd=5.0, clock_ns=0.5)
        scheduler = CommandScheduler(throttled, sweep_act_interval_ns=10.0)
        scheduler.issue(Command(CommandType.ROW_SWEEP, bank=0, rows=8))
        second = scheduler.issue(Command(CommandType.ROW_SWEEP, bank=1, rows=8))
        assert second.issue_time_ns == pytest.approx(400.0)
        assert scheduler.elapsed_ns == pytest.approx(640.0)


class TestCompoundCommands:
    def test_rowclone_duration(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(Command(CommandType.ROWCLONE, bank=0))
        assert scheduler.elapsed_ns == pytest.approx(
            2 * DDR4_2400.t_rcd + DDR4_2400.t_rp
        )

    def test_lisa_duration(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(Command(CommandType.LISA_RBM, bank=0))
        assert scheduler.elapsed_ns == pytest.approx(DDR4_2400.t_rcd + DDR4_2400.t_rp)

    def test_refresh_duration(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(Command(CommandType.REF, bank=0))
        assert scheduler.elapsed_ns == pytest.approx(DDR4_2400.t_rfc)

    def test_issue_all_returns_schedule(self):
        scheduler = CommandScheduler(DDR4_2400)
        scheduled = scheduler.issue_all([_act(0), _pre(0), _act(0, 5)])
        assert len(scheduled) == 3
        assert len(scheduler.schedule) == 3
        assert scheduled[2].issue_time_ns > scheduled[0].issue_time_ns

    def test_parallel_banks_overlap(self):
        scheduler = CommandScheduler(DDR4_2400)
        first = scheduler.issue(_act(0))
        second = scheduler.issue(_act(1))
        # The second bank's ACT only waits for tRRD, not for the first
        # bank's full activation.
        assert second.issue_time_ns - first.issue_time_ns == pytest.approx(
            DDR4_2400.t_rrd
        )


class TestMergeStreams:
    def _sweep(self, bank: int, rows: int = 8) -> Command:
        return Command(CommandType.ROW_SWEEP, bank=bank, rows=rows)

    def test_single_stream_matches_serial_cost(self):
        timing = TimingParameters(t_faw=0.0, t_rrd=0.0, clock_ns=0.5)
        scheduler = CommandScheduler(timing, sweep_act_interval_ns=10.0)
        makespan = scheduler.merge_streams([[self._sweep(0), self._sweep(0)]])
        assert makespan == pytest.approx(160.0)

    def test_two_banks_overlap_under_relaxed_timing(self):
        timing = TimingParameters(t_faw=0.0, t_rrd=1.0, clock_ns=0.5)
        scheduler = CommandScheduler(timing, sweep_act_interval_ns=10.0)
        makespan = scheduler.merge_streams(
            [[self._sweep(0)], [self._sweep(1)]]
        )
        # Both sweeps run concurrently, offset only by tRRD per activation
        # pair: far closer to one sweep (80 ns) than to two (160 ns).
        assert makespan == pytest.approx(81.0)

    def test_tfaw_throttles_merged_streams(self):
        relaxed = CommandScheduler(
            TimingParameters(t_faw=0.0, t_rrd=0.0, clock_ns=0.5),
            sweep_act_interval_ns=10.0,
        )
        throttled = CommandScheduler(
            TimingParameters(t_faw=120.0, t_rrd=0.0, clock_ns=0.5),
            sweep_act_interval_ns=10.0,
        )
        streams = [[self._sweep(bank)] for bank in range(8)]
        fast = relaxed.merge_streams(streams)
        slow = throttled.merge_streams(streams)
        # 64 activations across 8 banks: with a 120 ns window only four
        # can start per window, so the throttled makespan must sit above
        # the activation floor and above the unthrottled one.
        assert slow > fast
        assert slow >= tfaw_lower_bound_ns(64, throttled.timing)

    def test_streams_sharing_a_bank_serialise(self):
        timing = TimingParameters(t_faw=0.0, t_rrd=0.0, clock_ns=0.5)
        scheduler = CommandScheduler(timing, sweep_act_interval_ns=10.0)
        makespan = scheduler.merge_streams(
            [[self._sweep(3)], [self._sweep(3)]]
        )
        assert makespan == pytest.approx(160.0)

    def test_rejects_out_of_range_bank(self):
        scheduler = CommandScheduler(DDR4_2400, num_banks=2)
        with pytest.raises(TimingViolationError):
            scheduler.merge_streams([[self._sweep(7)]])

    def test_hierarchical_merge_beyond_sixteen_pending_activations(self):
        """A full rank of sweeps: 64 activations across all 4 bank groups.

        The merge must exercise the 16-entry sliding-window trim (more
        than 16 activations are pending at once), keep the tFAW floor for
        the whole activation population, and never beat the per-bank
        serial cost of its deepest bank.
        """
        timing = TimingParameters(t_faw=120.0, t_rrd=0.0, clock_ns=0.5)
        scheduler = CommandScheduler(
            timing, sweep_act_interval_ns=10.0, banks_per_group=4
        )
        streams = [[self._sweep(bank, rows=4)] for bank in range(16)]
        makespan = scheduler.merge_streams(streams)
        assert len(scheduler._recent_acts) == 16
        assert makespan >= tfaw_lower_bound_ns(64, timing)
        # Each bank alone needs rows x interval = 40 ns.
        assert makespan >= 40.0

    def test_merged_sweeps_unaffected_by_bank_groups(self):
        """Row activations couple through tRRD/tFAW, not tCCD."""
        timing = TimingParameters(t_faw=0.0, t_rrd=1.0, clock_ns=0.5)
        same_group = CommandScheduler(
            timing, sweep_act_interval_ns=10.0, banks_per_group=4
        )
        cross_group = CommandScheduler(
            timing, sweep_act_interval_ns=10.0, banks_per_group=4
        )
        assert same_group.merge_streams(
            [[self._sweep(0)], [self._sweep(1)]]
        ) == pytest.approx(
            cross_group.merge_streams([[self._sweep(0)], [self._sweep(4)]])
        )


class TestBankGroupColumnTiming:
    """tCCD_L / tCCD_S enforcement on column accesses (RD/WR)."""

    def _rd(self, bank: int) -> Command:
        return Command(CommandType.RD, bank=bank)

    def test_merge_same_group_pays_tccd_l(self):
        scheduler = CommandScheduler(DDR4_2400, banks_per_group=4)
        makespan = scheduler.merge_streams([[self._rd(0)], [self._rd(1)]])
        assert makespan == pytest.approx(
            DDR4_2400.t_ccd_l + DDR4_2400.t_cl + DDR4_2400.t_burst
        )

    def test_merge_cross_group_pays_tccd_s(self):
        scheduler = CommandScheduler(DDR4_2400, banks_per_group=4)
        makespan = scheduler.merge_streams([[self._rd(0)], [self._rd(4)]])
        assert makespan == pytest.approx(
            DDR4_2400.t_ccd_s + DDR4_2400.t_cl + DDR4_2400.t_burst
        )
        # The long/short asymmetry is exactly tCCD_L - tCCD_S.
        assert DDR4_2400.t_ccd_l - DDR4_2400.t_ccd_s == pytest.approx(
            5.0 - 3.33
        )

    def test_group_boundary_follows_banks_per_group(self):
        """Banks 0 and 1 share a group only while banks_per_group > 1."""
        wide = CommandScheduler(DDR4_2400, banks_per_group=4)
        narrow = CommandScheduler(DDR4_2400, banks_per_group=1)
        assert wide.bank_group_of(0) == wide.bank_group_of(3) == 0
        assert wide.bank_group_of(4) == 1
        assert narrow.bank_group_of(0) == 0
        assert narrow.bank_group_of(1) == 1
        crossed = narrow.merge_streams([[self._rd(0)], [self._rd(1)]])
        assert crossed == pytest.approx(
            DDR4_2400.t_ccd_s + DDR4_2400.t_cl + DDR4_2400.t_burst
        )

    def test_issue_path_enforces_tccd_between_groups(self):
        scheduler = CommandScheduler(DDR4_2400, banks_per_group=4)
        scheduler.issue(_act(0))
        scheduler.issue(_act(1))
        first = scheduler.issue(Command(CommandType.RD, bank=0))
        second = scheduler.issue(Command(CommandType.RD, bank=1))
        assert (
            second.issue_time_ns - first.issue_time_ns
            >= DDR4_2400.t_ccd_l - 1e-9
        )

    def test_rejects_non_positive_banks_per_group(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CommandScheduler(DDR4_2400, banks_per_group=0)

    def test_tccd_l_shorter_than_tccd_s_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TimingParameters(t_ccd_l=1.0, t_ccd_s=2.0)


class TestActivationAccounting:
    def test_activation_count_per_kind(self):
        assert activation_count(Command(CommandType.ROW_SWEEP, rows=256)) == 256
        assert activation_count(Command(CommandType.LISA_RBM, rows=16)) == 16
        assert activation_count(Command(CommandType.TRA)) == 2
        assert activation_count(Command(CommandType.SHIFT)) == 2
        assert activation_count(Command(CommandType.ROWCLONE)) == 2
        assert activation_count(Command(CommandType.ACT)) == 1
        assert activation_count(Command(CommandType.PRE)) == 0
        assert activation_count(Command(CommandType.RD)) == 0

    def test_tfaw_lower_bound(self):
        timing = TimingParameters(t_faw=100.0)
        assert tfaw_lower_bound_ns(4, timing) == 0.0
        assert tfaw_lower_bound_ns(5, timing) == pytest.approx(100.0)
        assert tfaw_lower_bound_ns(8, timing) == pytest.approx(100.0)
        assert tfaw_lower_bound_ns(9, timing) == pytest.approx(200.0)
        assert tfaw_lower_bound_ns(1000, TimingParameters(t_faw=0.0)) == 0.0

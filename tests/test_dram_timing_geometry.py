"""Tests for DRAM timing, energy, geometry, and address mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapper, RowAddress
from repro.dram.energy import DDR4_ENERGY, HMC_ENERGY, EnergyParameters
from repro.dram.geometry import DDR4_8GB, HMC_3DS_GEOMETRY, DRAMGeometry
from repro.dram.timing import DDR4_2400, HMC_3DS, TimingParameters, scaled_tfaw
from repro.errors import AddressError, ConfigurationError


class TestTiming:
    def test_ddr4_preset_matches_table3(self):
        # 17-17-17 timings at DDR4-2400 are 14.16 ns.
        assert DDR4_2400.t_rcd == pytest.approx(14.16)
        assert DDR4_2400.t_rp == pytest.approx(14.16)
        assert DDR4_2400.t_faw == pytest.approx(13.328)

    def test_3ds_is_faster_than_ddr4(self):
        assert HMC_3DS.t_rcd < DDR4_2400.t_rcd
        assert HMC_3DS.t_rp < DDR4_2400.t_rp

    def test_act_pre_cycle(self):
        assert DDR4_2400.act_pre_cycle == pytest.approx(28.32)

    def test_row_cycle(self):
        assert DDR4_2400.t_rc == pytest.approx(DDR4_2400.t_ras + DDR4_2400.t_rp)

    def test_tfaw_scaling(self):
        unconstrained = scaled_tfaw(DDR4_2400, 0.0)
        assert unconstrained.t_faw == 0.0
        half = DDR4_2400.with_tfaw_fraction(0.5)
        assert half.t_faw == pytest.approx(DDR4_2400.t_faw / 2)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(t_rcd=-1.0)
        with pytest.raises(ConfigurationError):
            DDR4_2400.with_tfaw_fraction(-0.5)


class TestEnergy:
    def test_act_pre_combined(self):
        assert DDR4_ENERGY.e_act_pre == pytest.approx(
            DDR4_ENERGY.e_act + DDR4_ENERGY.e_pre
        )

    def test_hmc_per_command_energy_lower(self):
        # 3DS rows are 32x smaller; per-command energy must be much lower.
        assert HMC_ENERGY.e_act < DDR4_ENERGY.e_act

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyParameters(e_act=-1.0)


class TestGeometry:
    def test_ddr4_capacity_is_8_gib(self):
        assert DDR4_8GB.capacity_gib == pytest.approx(8.0)

    def test_ddr4_row_and_bank_structure(self):
        assert DDR4_8GB.banks == 16
        assert DDR4_8GB.row_size_bytes == 8192
        assert DDR4_8GB.rows_per_subarray == 512

    def test_3ds_row_size(self):
        assert HMC_3DS_GEOMETRY.row_size_bytes == 256

    def test_elements_per_row(self):
        assert DDR4_8GB.elements_per_row(8) == 8192
        assert DDR4_8GB.elements_per_row(4) == 16384
        assert DDR4_8GB.elements_per_row(16) == 4096

    def test_row_validation(self):
        DDR4_8GB.validate_row(0, 0)
        DDR4_8GB.validate_row(DDR4_8GB.subarrays_per_bank - 1, 511)
        with pytest.raises(ConfigurationError):
            DDR4_8GB.validate_row(DDR4_8GB.subarrays_per_bank, 0)
        with pytest.raises(ConfigurationError):
            DDR4_8GB.validate_row(0, 512)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMGeometry(rows_per_subarray=0)


class TestAddressMapper:
    def test_row_roundtrip_small(self, small_geometry):
        mapper = AddressMapper(small_geometry)
        for flat in range(mapper.total_rows):
            assert mapper.encode_row(mapper.decode_row(flat)) == flat

    def test_decode_places_consecutive_rows_in_one_subarray(self, small_geometry):
        mapper = AddressMapper(small_geometry)
        first = mapper.decode_row(0)
        second = mapper.decode_row(1)
        assert first.subarray == second.subarray
        assert second.row == first.row + 1

    def test_byte_roundtrip(self, small_geometry):
        mapper = AddressMapper(small_geometry)
        address, column = mapper.decode_byte(small_geometry.row_size_bytes * 3 + 17)
        assert column == 17
        assert mapper.encode_byte(address, column) == small_geometry.row_size_bytes * 3 + 17

    def test_out_of_range_rejected(self, small_geometry):
        mapper = AddressMapper(small_geometry)
        with pytest.raises(AddressError):
            mapper.decode_row(mapper.total_rows)
        with pytest.raises(AddressError):
            mapper.decode_byte(-1)
        with pytest.raises(AddressError):
            mapper.encode_byte(RowAddress(0, 0, 0), small_geometry.row_size_bytes)

    def test_same_subarray_and_bank_checks(self, small_geometry):
        mapper = AddressMapper(small_geometry)
        a = RowAddress(0, 1, 5)
        b = RowAddress(0, 1, 9)
        c = RowAddress(0, 2, 5)
        d = RowAddress(1, 1, 5)
        assert mapper.same_subarray(a, b)
        assert not mapper.same_subarray(a, c)
        assert mapper.same_bank(a, c)
        assert not mapper.same_bank(a, d)

    def test_neighbours_at_edges(self, small_geometry):
        first = RowAddress(0, 0, 0)
        last = RowAddress(0, small_geometry.subarrays_per_bank - 1, 0)
        middle = RowAddress(0, 1, 0)
        assert len(first.neighbours(small_geometry)) == 1
        assert len(last.neighbours(small_geometry)) == 1
        assert len(middle.neighbours(small_geometry)) == 2

    def test_rows_in_subarray_listing(self, small_geometry):
        mapper = AddressMapper(small_geometry)
        rows = mapper.rows_in_subarray(0, 2)
        assert len(rows) == small_geometry.rows_per_subarray
        assert rows[0].row == 0 and rows[-1].row == small_geometry.rows_per_subarray - 1

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10**7))
    def test_roundtrip_property_ddr4(self, flat_row):
        mapper = AddressMapper(DDR4_8GB)
        flat_row %= mapper.total_rows
        assert mapper.encode_row(mapper.decode_row(flat_row)) == flat_row

"""Tests for the evaluation harness and the figure/table reproductions.

These assertions encode the paper's qualitative claims — who wins, in what
order, by roughly what factor — rather than exact values, since the
substrate is an analytical model rather than the authors' testbed.
"""

from __future__ import annotations

import pytest

from repro.evaluation.figures import (
    figure06_bitline_reliability,
    figure07_speedup_over_cpu,
    figure08_speedup_per_area,
    figure09_speedup_over_fpga,
    figure10_energy_over_cpu,
    figure11_lut_loading,
    figure12_scalability,
    figure13_tfaw_sensitivity,
    figure14_salp_scaling,
    figure_latency_breakdown,
    figure_static_verification,
)
from repro.evaluation.harness import EvaluationHarness, default_pluto_configs
from repro.evaluation.reporting import format_rows, render_markdown_table, render_result
from repro.evaluation.tables import (
    table01_design_comparison,
    table05_area_breakdown,
    table06_prior_pum_comparison,
    table07_qnn_inference,
)
from repro.workloads.image import ImageBinarization

#: Scale factor that keeps the CPU-relative figures fast in CI while
#: preserving the asymptotic behaviour (inputs are still >> one DRAM row).
SCALE = 0.05


@pytest.fixture(scope="module")
def fig07():
    return figure07_speedup_over_cpu(scale=SCALE)


class TestHarness:
    def test_default_configs_cover_six_points(self):
        configs = default_pluto_configs()
        assert len(configs) == 6
        assert "pLUTo-BSA" in configs and "pLUTo-GMC-3DS" in configs

    def test_workload_result_consistency(self):
        harness = EvaluationHarness()
        result = harness.evaluate(ImageBinarization(), 1 << 20)
        assert result.cpu.latency_ns > 0
        assert result.speedup_over_cpu("pLUTo-BSA") > 1
        assert result.energy_saving_over_cpu("pLUTo-BSA") > 1
        assert result.pluto_latency_ns("pLUTo-BSA") >= result.pluto["pLUTo-BSA"].total_latency_ns


class TestFigure6:
    def test_all_designs_reliable(self):
        result = figure06_bitline_reliability(runs=30)
        assert len(result.rows) == 4
        assert all(row["all_settled"] for row in result.rows)
        assert all(row["max_disturbance_fraction"] <= 0.01 for row in result.rows)


class TestFigure7:
    def test_design_ordering(self, fig07):
        gmean = fig07.rows[-1]
        assert gmean["workload"] == "GMEAN"
        # GMC > BSA > GSA, and every design beats the CPU by a wide margin.
        assert gmean["pLUTo-GMC"] > gmean["pLUTo-BSA"] > gmean["pLUTo-GSA"] > 10
        assert gmean["pLUTo-BSA"] > 50

    def test_3ds_outperforms_ddr4(self, fig07):
        gmean = fig07.rows[-1]
        for design in ("pLUTo-GSA", "pLUTo-BSA", "pLUTo-GMC"):
            assert gmean[f"{design}-3DS"] > gmean[design]

    def test_pluto_comparable_to_gpu_and_beats_pnm(self, fig07):
        gmean = fig07.rows[-1]
        assert gmean["pLUTo-BSA"] > 0.5 * gmean["GPU"]
        assert gmean["pLUTo-BSA"] > 5 * gmean["PnM"]

    def test_crc_shows_smallest_benefit(self, fig07):
        by_name = {row["workload"]: row for row in fig07.rows}
        crc = by_name["CRC-8"]["pLUTo-BSA"]
        assert crc <= by_name["ImgBin"]["pLUTo-BSA"]
        assert crc <= by_name["VMPC"]["pLUTo-BSA"]


class TestFigure8:
    def test_pluto_dominates_per_area(self):
        result = figure08_speedup_per_area(scale=SCALE)
        gmean = result.rows[-1]
        for design in ("pLUTo-GSA", "pLUTo-BSA", "pLUTo-GMC"):
            assert gmean[design] > gmean["GPU"]
            assert gmean[f"{design}-3DS"] > gmean[design]


class TestFigure9:
    # Figure 9 needs inputs large enough to amortise the one-time LUT load
    # (especially ADD8's partitioned 65,536-entry LUT), so it uses a larger
    # scale than the CPU-relative figures.
    def test_pluto_beats_fpga_everywhere(self):
        result = figure09_speedup_over_fpga(scale=0.5)
        for row in result.rows:
            assert row["pLUTo-BSA"] > 1

    def test_large_bit_width_has_smallest_gain(self):
        result = figure09_speedup_over_fpga(scale=0.5)
        by_name = {row["workload"]: row for row in result.rows}
        assert by_name["MUL16"]["pLUTo-BSA"] < by_name["BC4"]["pLUTo-BSA"]
        assert by_name["ADD8"]["pLUTo-BSA"] < by_name["ADD4"]["pLUTo-BSA"]


class TestFigure10:
    def test_energy_savings_ordering(self):
        result = figure10_energy_over_cpu(scale=SCALE)
        gmean = result.rows[-1]
        assert gmean["pLUTo-GMC"] > gmean["pLUTo-BSA"] > gmean["pLUTo-GSA"] > 10
        assert gmean["pLUTo-BSA"] > gmean["GPU"]


class TestFigure11:
    def test_loading_fraction_decreases_with_volume(self):
        result = figure11_lut_loading()
        ddr4 = [row for row in result.rows if row["source"] == "DDR4"]
        fractions = [row["load_fraction"] for row in ddr4]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] < 0.05

    def test_ssd_loading_costs_more_than_dram(self):
        result = figure11_lut_loading(volumes_mb=(10,))
        by_source = {row["source"]: row["load_fraction"] for row in result.rows}
        assert by_source["SSD"] > by_source["DDR4"]

    def test_break_even_near_two_megabytes(self):
        """The paper reports load time == query time at ~1.9 MB (DDR4)."""
        result = figure11_lut_loading(volumes_mb=(1.9,))
        ddr4 = [row for row in result.rows if row["source"] == "DDR4"][0]
        assert 0.35 < ddr4["load_fraction"] < 0.65


class TestFigure12:
    def test_throughput_drops_with_lut_size(self):
        result = figure12_scalability()
        panel_a = [row for row in result.rows if row["panel"] == "a"]
        small = panel_a[0]
        large = panel_a[-1]
        for design in ("pLUTo-BSA", "pLUTo-GSA", "pLUTo-GMC"):
            assert small[f"{design}_throughput"] > large[f"{design}_throughput"]
            assert small[f"{design}_energy_j"] < large[f"{design}_energy_j"]

    def test_pluto_comparable_to_simdram_for_small_multiplications(self):
        """Table 6 reports near-parity energy efficiency for pLUTo-BSA vs.
        SIMDRAM on small-bit-width arithmetic; our first-order model lands
        within a small factor (it does not charge SIMDRAM for layout
        transposition, see EXPERIMENTS.md)."""
        result = figure12_scalability()
        panel_b = {row["bit_width"]: row for row in result.rows if row["panel"] == "b"}
        ratio = panel_b[4]["pLUTo-BSA_ops_per_j"] / panel_b[4]["SIMDRAM_ops_per_j"]
        assert ratio > 0.25

    def test_pluto_beats_pnm_at_low_precision_only(self):
        result = figure12_scalability()
        panel_b = {row["bit_width"]: row for row in result.rows if row["panel"] == "b"}
        assert panel_b[4]["pLUTo-BSA_ops_per_j"] > panel_b[4]["PnM_ops_per_j"]
        assert panel_b[32]["pLUTo-BSA_ops_per_j"] < panel_b[32]["PnM_ops_per_j"]


class TestFigure13:
    def test_throttling_monotonic(self):
        result = figure13_tfaw_sensitivity(scale=SCALE)
        gmeans = {
            row["tfaw_fraction"]: row["relative_performance"]
            for row in result.rows
            if row["workload"] == "GMEAN"
        }
        assert gmeans[0.0] == pytest.approx(1.0)
        assert gmeans[1.0] <= gmeans[0.5] <= gmeans[0.0]
        assert gmeans[1.0] > 0.4  # pLUTo remains useful under nominal tFAW


class TestStaticVerification:
    def test_registry_verifies_clean_at_both_stages(self):
        """Every registry family must be diagnostic-free, both as recorded
        and after the optimizer rewrites it (the EXPERIMENTS.md table)."""
        result = figure_static_verification(elements=256)
        stages = {(row["workload"], row["stage"]) for row in result.rows}
        assert all(row["clean"] for row in result.rows), result.rows
        assert all(row["errors"] == 0 == row["warnings"] for row in result.rows)
        assert len(stages) == len(result.rows)  # one row per (family, stage)
        assert {stage for _, stage in stages} == {"recorded", "optimized"}


class TestLatencyBreakdown:
    def test_six_families_with_stages_and_energy(self):
        """One row per workload family; every row carries positive stage
        durations and a positive energy attribution (the EXPERIMENTS.md
        latency-breakdown table)."""
        result = figure_latency_breakdown(elements=256, requests=2)
        assert [row["workload"] for row in result.rows] == [
            "image", "crc", "salsa20", "vmpc", "bitcount", "vector_ops",
        ]
        for row in result.rows:
            assert row["submit_ns"] > 0.0
            assert row["execute_ns"] > 0.0
            assert row["queue_wait_ns"] >= 0.0
            assert row["modelled_latency_ns"] > 0.0
            assert row["energy_pj"] > 0.0
            assert row["dram_commands"] > 0
            assert 0.0 <= row["refresh_overhead_fraction"] < 1.0

    def test_tracing_state_is_restored(self):
        from repro.obs.trace import tracing_enabled

        before = tracing_enabled()
        figure_latency_breakdown(elements=256, requests=1)
        assert tracing_enabled() == before


class TestFigure14:
    def test_scaling_with_subarrays(self):
        """Speedup grows close to linearly with subarray-level parallelism
        provided the queried input is large enough (Section 8.8)."""
        result = figure14_salp_scaling(
            ddr4_subarrays=(1, 16, 256), threeds_subarrays=(512,), scale=1.0
        )
        ddr4_rows = [row for row in result.rows if row["memory"] == "DDR4"]
        speedups = [row["pLUTo-BSA"] for row in ddr4_rows]
        assert speedups[1] > 6 * speedups[0]
        assert speedups[2] > 3 * speedups[1]


class TestTables:
    def test_table1_orderings(self):
        result = table01_design_comparison()
        rows = {row["design"]: row for row in result.rows}
        assert rows["pLUTo-GMC"]["query_latency_ns"] < rows["pLUTo-BSA"]["query_latency_ns"]
        assert rows["pLUTo-GSA"]["query_latency_ns"] > rows["pLUTo-BSA"]["query_latency_ns"]
        assert rows["pLUTo-GSA"]["destructive_reads"]

    def test_table5_totals(self):
        result = table05_area_breakdown()
        totals = {row["configuration"]: row["Total"] for row in result.rows}
        assert totals["Base DRAM"] == pytest.approx(70.23, abs=0.1)
        overheads = {row["configuration"]: row["Overhead"] for row in result.rows}
        assert overheads["pLUTo-GSA"] == pytest.approx(0.102, abs=0.01)
        assert overheads["pLUTo-GMC"] == pytest.approx(0.231, abs=0.01)

    def test_table6_pluto_wins_complex_ops(self):
        result = table06_prior_pum_comparison()
        by_op = {row["operation"]: row for row in result.rows}
        # pLUTo multiplication is far faster than every prior PuM design.
        mul = by_op["4-bit Multiplication"]
        assert mul["pLUTo-BSA"] < mul["SIMDRAM"] < mul["Ambit"]
        # LUT-query rows are unsupported ('None') for every prior design.
        lut_row = by_op["8-bit Exponentiation"]
        assert lut_row["Ambit"] is None and lut_row["pLUTo-BSA"] is not None
        # Bit counting is supported by SIMDRAM but not LAcc.
        bc4 = by_op["4-bit Bit Counting"]
        assert bc4["LAcc"] is None and bc4["SIMDRAM"] is not None

    def test_table6_addition_not_a_pluto_win(self):
        """The paper notes pLUTo slightly lags prior PuM for 4-bit addition."""
        result = table06_prior_pum_comparison()
        add = {row["operation"]: row for row in result.rows}["4-bit Addition"]
        assert add["pLUTo-BSA"] > add["LAcc"]

    def test_table7_structure(self):
        result = table07_qnn_inference()
        assert len(result.rows) == 8
        systems = {row["system"] for row in result.rows}
        assert systems == {"CPU", "GPU", "FPGA", "pLUTo-BSA"}


class TestReporting:
    def test_format_rows_handles_mixed_types(self):
        text = format_rows([{"a": 1, "b": None}, {"a": 2.5, "b": True, "c": "x"}])
        assert "a" in text and "-" in text and "yes" in text

    def test_render_result_includes_title(self):
        rendered = render_result(table05_area_breakdown())
        assert rendered.startswith("Table 5")

    def test_markdown_table(self):
        markdown = render_markdown_table([{"x": 1, "y": 2}])
        assert markdown.splitlines()[0] == "| x | y |"
        assert format_rows([]) == "(no rows)"

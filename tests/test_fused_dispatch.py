"""Tests for fused single-pass shard execution (controller/executor.py).

Contract: executing all shards of a plan in one batched pass over
stacked ``(shards, slice)`` arrays is indistinguishable from the
per-shard loop — bit-identical outputs and registers, identical command
traces, identical makespans — with the functional backend kept as the
per-shard bit-exactness oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import PlutoSession, cache_stats, compile_cached
from repro.controller.dispatch import ParallelDispatcher, ShardPlanner
from repro.controller.executor import (
    PlutoController,
    clear_trace_templates,
    trace_template_stats,
)
from repro.controller.hierarchy import HierarchicalDispatcher
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.errors import ConfigurationError, ExecutionError

ELEMENTS = 640


def _mixed_program(elements: int = ELEMENTS):
    """Mul + add + map + bitwise + shift: every command class in one trace."""
    from repro.api.luts import color_grade_lut

    session = PlutoSession()
    a = session.pluto_malloc(elements, 2, "a")
    b = session.pluto_malloc(elements, 2, "b")
    c = session.pluto_malloc(elements, 4, "c")
    tmp = session.pluto_malloc(elements, 4, "tmp")
    summed = session.pluto_malloc(elements, 8, "summed")
    graded = session.pluto_malloc(elements, 8, "graded")
    mixed = session.pluto_malloc(elements, 8, "mixed")
    shifted = session.pluto_malloc(elements, 8, "shifted")
    session.api_pluto_mul(a, b, tmp, bit_width=2)
    session.api_pluto_add(c, tmp, summed, bit_width=4)
    session.api_pluto_map(color_grade_lut(), summed, graded)
    session.api_pluto_bitwise("xor", graded, summed, mixed)
    session.api_pluto_shift(mixed, shifted, 2, "r")
    rng = np.random.default_rng(5)
    inputs = {
        "a": rng.integers(0, 4, elements),
        "b": rng.integers(0, 4, elements),
        "c": rng.integers(0, 16, elements),
    }
    return session, inputs


def _assert_same_results(fused, loop):
    assert len(fused.shard_results) == len(loop.shard_results)
    for shard_fused, shard_loop in zip(fused.shard_results, loop.shard_results):
        for name, data in shard_loop.outputs.items():
            assert np.array_equal(shard_fused.outputs[name], data), name
        for name, data in shard_loop.registers.items():
            assert np.array_equal(shard_fused.registers[name], data), name
        assert shard_fused.lut_queries == shard_loop.lut_queries
        assert shard_fused.instructions_executed == shard_loop.instructions_executed
        assert (
            shard_fused.trace.total_latency_ns == shard_loop.trace.total_latency_ns
        )
        assert shard_fused.trace.total_energy_nj == shard_loop.trace.total_energy_nj
        assert [
            (cmd.kind, cmd.bank, cmd.rows) for cmd in shard_fused.trace.commands
        ] == [(cmd.kind, cmd.bank, cmd.rows) for cmd in shard_loop.trace.commands]
    for name, data in loop.outputs.items():
        assert np.array_equal(fused.outputs[name], data), name
    assert fused.makespan_ns == loop.makespan_ns
    assert fused.serial_latency_ns == loop.serial_latency_ns


class TestFusedParallelDispatch:
    @pytest.mark.parametrize(
        "design", [PlutoDesign.BSA, PlutoDesign.GSA, PlutoDesign.GMC]
    )
    @pytest.mark.parametrize("shards", [1, 3, 7, 16])
    def test_bit_identical_to_per_shard(self, design, shards):
        session, inputs = _mixed_program()
        engine = PlutoEngine(PlutoConfig(design=design, tfaw_fraction=1.0))
        fused = ParallelDispatcher(engine, fused=True).execute(
            session.calls, inputs, shards=shards
        )
        loop = ParallelDispatcher(engine, fused=False).execute(
            session.calls, inputs, shards=shards
        )
        assert fused.backend == loop.backend == "vectorized"
        _assert_same_results(fused, loop)

    def test_matches_functional_oracle(self):
        """Fused vectorized output == per-shard functional execution."""
        session, inputs = _mixed_program(96)
        engine = PlutoEngine(PlutoConfig())
        fused = ParallelDispatcher(engine, fused=True).execute(
            session.calls, inputs, shards=6
        )
        oracle = ParallelDispatcher(engine, backend="functional").execute(
            session.calls, inputs, shards=6
        )
        assert oracle.backend == "functional"
        for name, data in oracle.outputs.items():
            assert np.array_equal(fused.outputs[name], data), name
        assert fused.makespan_ns == oracle.makespan_ns

    def test_functional_backend_defaults_to_per_shard(self):
        session, inputs = _mixed_program(64)
        dispatcher = ParallelDispatcher(backend="functional")
        result = dispatcher.execute(session.calls, inputs, shards=4)
        assert result.backend == "functional"
        with pytest.raises(ConfigurationError, match="cannot run fused"):
            ParallelDispatcher(backend="functional", fused=True).execute(
                session.calls, inputs, shards=4
            )

    def test_uneven_shards_group_by_size(self):
        """29 elements over 6 shards: two size groups, outputs intact."""
        session, inputs = _mixed_program(29)
        engine = PlutoEngine(PlutoConfig())
        reference = session.run(inputs, engine=engine)
        fused = ParallelDispatcher(engine, fused=True).execute(
            session.calls, inputs, shards=6
        )
        sizes = {plan.size for plan in fused.shard_plans}
        assert sizes == {4, 5}
        for name, data in reference.outputs.items():
            assert np.array_equal(fused.outputs[name], data), name


class TestFusedHierarchicalDispatch:
    @pytest.mark.parametrize("channels,ranks", [(1, 1), (2, 2)])
    def test_bit_identical_to_per_shard(self, channels, ranks):
        session, inputs = _mixed_program()
        engine = PlutoEngine(
            PlutoConfig(tfaw_fraction=1.0, channels=channels, ranks=ranks)
        )
        fused = HierarchicalDispatcher(engine, fused=True).execute(
            session.calls, inputs
        )
        loop = HierarchicalDispatcher(engine, fused=False).execute(
            session.calls, inputs
        )
        _assert_same_results(fused, loop)
        assert fused.bank_only_makespan_ns == loop.bank_only_makespan_ns
        assert fused.rank_parallel_makespan_ns == loop.rank_parallel_makespan_ns
        assert fused.channel_makespans == loop.channel_makespans
        assert fused.rank_makespans == loop.rank_makespans


class TestExecuteFused:
    def test_requires_batched_backend(self):
        session, _ = _mixed_program(16)
        compiled = compile_cached(session.calls)
        controller = PlutoController(backend="functional")
        with pytest.raises(ExecutionError, match="fused"):
            controller.execute_fused(
                compiled, {}, banks=[0, 1]
            )

    def test_validates_stacked_shapes_and_widths(self):
        session, inputs = _mixed_program(16)
        compiled = compile_cached(session.calls)
        controller = PlutoController(backend="vectorized")
        # Two "shards" = two 16-element input sets of the same program.
        stacked = {
            name: np.stack([np.asarray(data), np.asarray(data)])
            for name, data in inputs.items()
        }
        results = controller.execute_fused(compiled, stacked, banks=[0, 1])
        assert len(results) == 2
        with pytest.raises(ExecutionError, match="shape"):
            controller.execute_fused(
                compiled, dict(stacked, a=np.zeros((2, 5), dtype=np.uint64)),
                banks=[0, 1],
            )
        with pytest.raises(ExecutionError, match="missing input"):
            controller.execute_fused(
                compiled, {k: v for k, v in stacked.items() if k != "a"},
                banks=[0, 1],
            )
        wide = dict(stacked, a=np.full((2, 16), 9, dtype=np.uint64))
        with pytest.raises(ExecutionError, match="wider"):
            controller.execute_fused(compiled, wide, banks=[0, 1])
        with pytest.raises(ExecutionError, match="bank"):
            controller.execute_fused(compiled, stacked, banks=[0, 99])

    def test_trace_template_cache(self):
        clear_trace_templates()
        session, inputs = _mixed_program(32)
        engine = PlutoEngine(PlutoConfig())
        dispatcher = ParallelDispatcher(engine, fused=True)
        dispatcher.execute(session.calls, inputs, shards=4)
        first = trace_template_stats()
        assert first["misses"] >= 1
        dispatcher.execute(session.calls, inputs, shards=4)
        second = trace_template_stats()
        assert second["hits"] > first["hits"]
        assert second["misses"] == first["misses"]


class TestPlannerSharing:
    def test_equal_shards_share_call_tuples(self):
        """The resize fix: one rewritten program per distinct shard size."""
        session, _ = _mixed_program(64)
        plans = ShardPlanner(num_banks=16).plan(session.calls, 8)
        assert all(plan.calls is plans[0].calls for plan in plans)

    def test_two_sizes_share_within_each_group(self):
        session, _ = _mixed_program(29)
        plans = ShardPlanner(num_banks=16).plan(session.calls, 6)
        by_size = {}
        for plan in plans:
            by_size.setdefault(plan.size, set()).add(id(plan.calls))
        assert all(len(ids) == 1 for ids in by_size.values())
        assert len(by_size) == 2

    def test_full_size_slice_reuses_original_calls(self):
        session, _ = _mixed_program(64)
        slices = ShardPlanner.plan_slices(session.calls, 1)
        assert slices[0][2] == tuple(session.calls)
        assert slices[0][2][0] is session.calls[0]


class TestCacheStatsSurface:
    def test_session_cache_stats_keys(self):
        stats = PlutoSession.cache_stats()
        assert set(stats) == {
            "programs",
            "shared_store",
            "optimizer",
            "lut_compositions",
            "trace_templates",
            "scheduler_merges",
            "hierarchy_schedules",
            "engine_helpers",
            "lut_gather_arrays",
            "compiled_exec",
            "verifier",
            "planner",
        }
        assert {"hits", "misses", "size"} <= set(stats["scheduler_merges"])
        assert stats is not cache_stats()  # fresh snapshots, not aliases

    def test_service_stats_report_cache_stats(self):
        from repro.api.service import ServiceStats

        stats = ServiceStats()
        assert stats.cache_stats().keys() == PlutoSession.cache_stats().keys()

"""Tests for hierarchical channel/rank/bank dispatch (controller/hierarchy.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import PlutoSession
from repro.controller.hierarchy import (
    HierarchicalDispatcher,
    HierarchicalExecutionResult,
    HierarchyPlanner,
    bus_occupancy_ns,
    hierarchical_makespan_ns,
    interleaved_bank_order,
)
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.commands import Command, CommandType
from repro.dram.geometry import DRAMGeometry
from repro.errors import ConfigurationError, ExecutionError

ELEMENTS = 1024


def _program(elements: int = ELEMENTS) -> tuple[PlutoSession, dict]:
    """The Figure 5 multiply-add over many elements."""
    session = PlutoSession()
    a = session.pluto_malloc(elements, 2, "a")
    b = session.pluto_malloc(elements, 2, "b")
    c = session.pluto_malloc(elements, 4, "c")
    tmp = session.pluto_malloc(elements, 4, "tmp")
    out = session.pluto_malloc(elements, 8, "out")
    session.api_pluto_mul(a, b, tmp, bit_width=2)
    session.api_pluto_add(c, tmp, out, bit_width=4)
    rng = np.random.default_rng(11)
    inputs = {
        "a": rng.integers(0, 4, elements),
        "b": rng.integers(0, 4, elements),
        "c": rng.integers(0, 16, elements),
    }
    return session, inputs


def _engine(channels: int = 1, ranks: int = 1) -> PlutoEngine:
    return PlutoEngine(
        PlutoConfig(tfaw_fraction=1.0, channels=channels, ranks=ranks)
    )


class TestHierarchyPlanner:
    def test_channel_first_placement(self):
        session, _ = _program(64)
        geometry = DRAMGeometry(channels=2, ranks=2)
        plans = HierarchyPlanner(geometry).plan(session.calls, 8)
        assert [plan.channel for plan in plans] == [0, 1, 0, 1, 0, 1, 0, 1]
        assert [plan.rank for plan in plans] == [0, 0, 1, 1, 0, 0, 1, 1]
        # The first four shards use bank 0 of four different (channel,
        # rank) pairs; the next four move to the next bank group.
        assert [plan.bank for plan in plans] == [0, 0, 0, 0, 4, 4, 4, 4]
        assert [plan.bank_group for plan in plans] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_bank_order_round_robins_groups(self):
        order = interleaved_bank_order(DRAMGeometry())
        assert sorted(order) == list(range(16))
        groups = [bank // 4 for bank in order]
        assert groups[:8] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_default_shard_count_uses_every_bank(self):
        session, _ = _program(256)
        geometry = DRAMGeometry(channels=2, ranks=1)
        plans = HierarchyPlanner(geometry).plan(session.calls)
        assert len(plans) == geometry.total_banks == 32

    def test_default_clamps_to_element_count(self):
        session, _ = _program(3)
        plans = HierarchyPlanner(DRAMGeometry()).plan(session.calls)
        assert len(plans) == 3

    def test_rejects_more_shards_than_device_banks(self):
        session, _ = _program(256)
        with pytest.raises(ConfigurationError, match="16 banks"):
            HierarchyPlanner(DRAMGeometry()).plan(session.calls, 17)

    def test_slices_cover_elements_exactly(self):
        session, _ = _program(29)
        plans = HierarchyPlanner(DRAMGeometry(channels=2, ranks=2)).plan(
            session.calls, 6
        )
        assert plans[0].start == 0
        assert plans[-1].stop == 29
        for before, after in zip(plans, plans[1:]):
            assert before.stop == after.start


class TestDifferential:
    """Bit-exactness across the full hierarchy grid, on both backends."""

    @pytest.mark.parametrize("backend", ["vectorized", "functional"])
    @pytest.mark.parametrize("channels", [1, 2])
    @pytest.mark.parametrize("ranks", [1, 2])
    @pytest.mark.parametrize("banks_used", [1, 2, 4])
    def test_bit_identical_to_serial(self, backend, channels, ranks, banks_used):
        session, inputs = _program()
        session.backend = backend
        engine = _engine(channels, ranks)
        reference = session.run(inputs, engine=engine)
        shards = channels * ranks * banks_used
        result = HierarchicalDispatcher(engine, backend=backend).execute(
            session.calls, inputs, shards=shards
        )
        assert isinstance(result, HierarchicalExecutionResult)
        assert result.num_shards == shards
        assert result.backend == backend
        for name, data in reference.outputs.items():
            assert np.array_equal(result.outputs[name], data), name
        banks_touched = {
            (plan.channel, plan.rank, plan.bank) for plan in result.shards
        }
        assert len(banks_touched) == shards

    @pytest.mark.parametrize("channels,ranks", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_per_level_makespans_are_monotone(self, channels, ranks):
        session, inputs = _program(8192)
        engine = _engine(channels, ranks)
        result = HierarchicalDispatcher(engine).execute(session.calls, inputs)
        assert (
            result.makespan_ns
            <= result.rank_parallel_makespan_ns
            <= result.bank_only_makespan_ns
            <= result.serial_latency_ns
        )
        decomposition = result.speedup_decomposition
        assert decomposition["total"] == pytest.approx(
            decomposition["bank"]
            * decomposition["rank"]
            * decomposition["channel"]
        )

    def test_levels_help_once_tfaw_binds(self):
        """Extra ranks/channels relieve the per-rank tFAW throttle."""
        session, inputs = _program(16384)
        flat = HierarchicalDispatcher(_engine(1, 1)).execute(
            session.calls, inputs, shards=16
        )
        tall = HierarchicalDispatcher(_engine(2, 2)).execute(
            session.calls, inputs, shards=64
        )
        assert tall.rank_speedup > 1.5
        assert tall.channel_speedup > 1.5
        assert tall.parallel_speedup > flat.parallel_speedup

    def test_single_shard_matches_serial(self):
        session, inputs = _program()
        result = HierarchicalDispatcher(_engine(2, 2)).execute(
            session.calls, inputs, shards=1
        )
        assert result.makespan_ns == pytest.approx(
            result.serial_latency_ns, rel=1e-6
        )
        assert result.bank_only_makespan_ns == pytest.approx(
            result.makespan_ns, rel=1e-6
        )

    def test_channel_makespans_cover_device_makespan(self):
        session, inputs = _program(4096)
        result = HierarchicalDispatcher(_engine(2, 2)).execute(
            session.calls, inputs
        )
        assert set(result.channel_makespans) == {0, 1}
        assert max(result.channel_makespans.values()) == pytest.approx(
            result.makespan_ns
        )
        assert set(result.rank_makespans) == {(c, r) for c in (0, 1) for r in (0, 1)}

    def test_rejects_mis_sized_and_unknown_inputs(self):
        session, inputs = _program(16)
        dispatcher = HierarchicalDispatcher(_engine())
        oversized = dict(inputs, a=np.zeros(32, dtype=np.uint64))
        with pytest.raises(ExecutionError):
            dispatcher.execute(session.calls, oversized, shards=2)
        unknown = dict(inputs, ghost=np.zeros(16, dtype=np.uint64))
        with pytest.raises(ExecutionError):
            dispatcher.execute(session.calls, unknown, shards=2)


class TestMakespanModel:
    def test_collapsed_hierarchy_equals_bank_only(self):
        session, inputs = _program(4096)
        engine = _engine(2, 2)
        result = HierarchicalDispatcher(engine).execute(session.calls, inputs)
        streams = [r.trace.commands for r in result.shard_results]
        assert hierarchical_makespan_ns(
            streams, engine, channels=1, ranks=1
        ) == pytest.approx(result.bank_only_makespan_ns)

    def test_empty_streams_have_zero_makespan(self):
        engine = _engine()
        assert hierarchical_makespan_ns([], engine, channels=2, ranks=2) == 0.0
        assert hierarchical_makespan_ns([[]], engine, channels=1, ranks=1) == 0.0

    def test_rejects_non_positive_levels(self):
        engine = _engine()
        stream = [[Command(CommandType.ACT, bank=0)]]
        with pytest.raises(ConfigurationError):
            hierarchical_makespan_ns(stream, engine, channels=0, ranks=1)
        with pytest.raises(ConfigurationError):
            hierarchical_makespan_ns(stream, engine, channels=1, ranks=-1)

    def test_bus_occupancy_counts_activations_and_bursts(self):
        engine = _engine()
        timing = engine.timing
        streams = [
            [
                Command(CommandType.ROW_SWEEP, bank=0, rows=8),
                Command(CommandType.RD, bank=0),
                Command(CommandType.PRE, bank=0),
            ]
        ]
        expected = (
            8 * timing.clock_ns
            + max(timing.t_burst, timing.t_ccd_s, timing.clock_ns)
            + timing.clock_ns
        )
        assert bus_occupancy_ns(streams, engine) == pytest.approx(expected)

    def test_channel_bus_bounds_rank_parallelism(self):
        """A channel cannot finish before issuing every rank's commands."""
        engine = _engine(1, 4)
        # Four one-activation streams, one per rank: rank makespans overlap
        # fully, so the bus occupancy (4 activations) is not the binding
        # constraint — but the model must still include it.
        streams = [[Command(CommandType.ACT, bank=0)] for _ in range(4)]
        makespan = hierarchical_makespan_ns(streams, engine, channels=1, ranks=4)
        assert makespan >= 4 * engine.timing.clock_ns
        assert makespan >= engine.timing.t_rcd


class TestSessionSurface:
    def test_run_hierarchical(self):
        session, inputs = _program()
        reference = session.run(inputs)
        engine = _engine(2, 2)
        result = session.run_hierarchical(inputs, engine=engine, shards=8)
        assert isinstance(result, HierarchicalExecutionResult)
        assert np.array_equal(result.outputs["out"], reference.outputs["out"])
        assert result.parallel_speedup > 1.0

    def test_run_hierarchical_default_shards(self):
        session, inputs = _program(64)
        result = session.run_hierarchical(inputs)
        # Default engine: a single-channel, single-rank, 16-bank module.
        assert result.num_shards == 16

"""Tests for the prior-work PuM primitives: RowClone, LISA, Ambit, DRISA, SALP."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import Bank
from repro.dram.commands import CommandTrace, CommandType
from repro.dram.energy import DDR4_ENERGY
from repro.dram.subarray import Subarray
from repro.dram.timing import DDR4_2400
from repro.errors import ConfigurationError
from repro.inmem.ambit import AmbitUnit
from repro.inmem.drisa import DrisaShifter
from repro.inmem.lisa import LisaUnit
from repro.inmem.rowclone import RowCloneUnit
from repro.inmem.salp import SalpScheduler, SweepRequest, salp_speedup


class TestRowClone:
    def test_copy_within_subarray(self, small_geometry, rng):
        subarray = Subarray(small_geometry)
        data = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        subarray.load_row(1, data)
        RowCloneUnit().copy(subarray, 1, 9)
        assert np.array_equal(subarray.peek_row(9), data)
        assert np.array_equal(subarray.peek_row(1), data)  # source preserved

    def test_copy_records_command(self, small_geometry):
        trace = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        subarray = Subarray(small_geometry)
        RowCloneUnit(trace).copy(subarray, 0, 1)
        assert trace.count(CommandType.ROWCLONE) == 1
        assert trace.total_latency_ns == pytest.approx(
            2 * DDR4_2400.t_rcd + DDR4_2400.t_rp
        )

    def test_same_row_rejected(self, small_geometry):
        with pytest.raises(ConfigurationError):
            RowCloneUnit().copy(Subarray(small_geometry), 3, 3)

    def test_zero_initialisation(self, small_geometry, rng):
        subarray = Subarray(small_geometry)
        subarray.load_row(5, rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8))
        RowCloneUnit().initialize(subarray, zero_row=0, destination_row=5)
        assert not subarray.peek_row(5).any()


class TestLisa:
    def test_move_between_subarrays(self, small_geometry, rng):
        bank = Bank(small_geometry)
        data = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        bank.subarray(0).load_row(4, data)
        LisaUnit().move_row(bank, 0, 4, 2, 7)
        assert np.array_equal(bank.subarray(2).peek_row(7), data)

    def test_hop_count_and_trace(self, small_geometry):
        trace = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        bank = Bank(small_geometry)
        unit = LisaUnit(trace)
        assert unit.hops_between(0, 3) == 3
        unit.move_row(bank, 0, 0, 3, 0)
        assert trace.count(CommandType.LISA_RBM) == 3

    def test_same_subarray_rejected(self, small_geometry):
        with pytest.raises(ConfigurationError):
            LisaUnit().move_row(Bank(small_geometry), 1, 0, 1, 5)

    def test_broadcast(self, small_geometry, rng):
        bank = Bank(small_geometry)
        data = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        bank.subarray(0).load_row(0, data)
        LisaUnit().broadcast_row(bank, 0, 0, [(1, 0), (2, 0), (3, 0)])
        for subarray in (1, 2, 3):
            assert np.array_equal(bank.subarray(subarray).peek_row(0), data)


class TestAmbit:
    def test_truth_tables_on_rows(self, rng):
        unit = AmbitUnit()
        a = rng.integers(0, 256, 32).astype(np.uint8)
        b = rng.integers(0, 256, 32).astype(np.uint8)
        assert np.array_equal(unit.bitwise_and(a, b), a & b)
        assert np.array_equal(unit.bitwise_or(a, b), a | b)
        assert np.array_equal(unit.bitwise_xor(a, b), a ^ b)
        assert np.array_equal(unit.bitwise_not(a), np.bitwise_not(a))
        assert np.array_equal(unit.bitwise_xnor(a, b), np.bitwise_not(a ^ b))

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_majority_is_bitwise_majority(self, x, y, z):
        unit = AmbitUnit()
        a, b, c = (np.array([v], dtype=np.uint8) for v in (x, y, z))
        expected = (x & y) | (y & z) | (x & z)
        assert unit.majority(a, b, c)[0] == expected

    def test_operate_rows_in_subarray(self, small_geometry, rng):
        subarray = Subarray(small_geometry)
        a = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        b = rng.integers(0, 256, small_geometry.row_size_bytes).astype(np.uint8)
        subarray.load_row(0, a)
        subarray.load_row(1, b)
        unit = AmbitUnit()
        unit.operate_rows(subarray, "xor", [0, 1], 10)
        assert np.array_equal(subarray.peek_row(10), a ^ b)

    def test_operand_count_validation(self, small_geometry):
        unit = AmbitUnit()
        subarray = Subarray(small_geometry)
        with pytest.raises(ConfigurationError):
            unit.operate_rows(subarray, "and", [0], 5)
        with pytest.raises(ConfigurationError):
            unit.operate_rows(subarray, "not", [0, 1], 5)
        with pytest.raises(ConfigurationError):
            unit.operate_rows(subarray, "nonsense", [0, 1], 5)

    def test_command_costs_recorded(self):
        trace = CommandTrace(timing=DDR4_2400, energy=DDR4_ENERGY)
        unit = AmbitUnit(trace)
        unit.bitwise_and(np.zeros(4, np.uint8), np.zeros(4, np.uint8))
        assert trace.count(CommandType.TRA) == unit.command_count("and")
        unit.bitwise_xor(np.zeros(4, np.uint8), np.zeros(4, np.uint8))
        assert trace.count(CommandType.TRA) == unit.command_count("and") + unit.command_count("xor")

    def test_xor_costs_more_than_and(self):
        unit = AmbitUnit()
        assert unit.command_count("xor") > unit.command_count("and")
        assert unit.command_count("not") < unit.command_count("and")


class TestDrisa:
    def test_command_decomposition(self):
        shifter = DrisaShifter()
        assert shifter.commands_for(0) == 0
        assert shifter.commands_for(1) == 1
        assert shifter.commands_for(8) == 1
        assert shifter.commands_for(12) == 1 + 4
        assert shifter.commands_for(17) == 2 + 1

    def test_row_shift_left_right_inverse(self, rng):
        shifter = DrisaShifter()
        row = rng.integers(0, 256, 16).astype(np.uint8)
        left = shifter.shift_row_left(row, 8)
        back = shifter.shift_row_right(left, 8)
        # One byte falls off each end.
        assert np.array_equal(back[:-1], row[:-1])

    def test_element_wise_shift(self):
        shifter = DrisaShifter()
        from repro.utils.bitops import pack_elements, unpack_elements

        values = np.array([1, 2, 3, 4], dtype=np.uint64)
        row = pack_elements(values, 8, 8)
        shifted = shifter.shift_elements_left(row, 4, 8, 4)
        recovered = unpack_elements(shifted, 8, 4)
        assert np.array_equal(recovered, (values << np.uint64(4)) & np.uint64(0xFF))

    def test_negative_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            DrisaShifter().shift_row_left(np.zeros(4, np.uint8), -1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=64))
    def test_shift_preserves_bit_count_upper_bound(self, bits):
        shifter = DrisaShifter()
        row = np.full(16, 0xFF, dtype=np.uint8)
        shifted = shifter.shift_row_left(row, bits)
        assert int(np.unpackbits(shifted).sum()) == max(0, 128 - bits)


class TestSalp:
    def test_unconstrained_speedup_is_linear(self):
        assert salp_speedup(16, DDR4_2400) == pytest.approx(16.0)
        assert salp_speedup(512, DDR4_2400) == pytest.approx(512.0)

    def test_tfaw_limits_speedup(self):
        limited = salp_speedup(64, DDR4_2400, tfaw_fraction=1.0)
        assert limited < 64.0
        assert limited >= 1.0

    def test_tighter_tfaw_means_lower_speedup(self):
        relaxed = salp_speedup(64, DDR4_2400, tfaw_fraction=0.5)
        nominal = salp_speedup(64, DDR4_2400, tfaw_fraction=1.0)
        assert nominal <= relaxed

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            salp_speedup(0, DDR4_2400)
        with pytest.raises(ConfigurationError):
            salp_speedup(4, DDR4_2400, act_interval_ns=0.0)

    def test_scheduler_makespan_scales_with_activations(self):
        scheduler = SalpScheduler(DDR4_2400, tfaw_fraction=0.0)
        short = scheduler.simulate([SweepRequest(0, 4, 28.32)])
        long = scheduler.simulate([SweepRequest(0, 16, 28.32)])
        assert long > short

    def test_scheduler_relative_performance_in_unit_range(self):
        scheduler = SalpScheduler(DDR4_2400, tfaw_fraction=1.0)
        relative = scheduler.relative_performance(activations=64, subarrays=16)
        assert 0.0 < relative <= 1.0

    def test_scheduler_rejects_bad_requests(self):
        scheduler = SalpScheduler(DDR4_2400)
        with pytest.raises(ConfigurationError):
            scheduler.simulate([SweepRequest(0, 0, 10.0)])

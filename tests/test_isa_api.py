"""Tests for the pLUTo ISA, registers, programs, and the Library LUT builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.handles import ApiCall, PlutoVector
from repro.api.luts import (
    add_lut,
    binarize_lut,
    bitcount_lut,
    bitwise_lut,
    color_grade_lut,
    crc8_lut,
    crc16_lut,
    crc32_lut,
    exponentiation_lut,
    identity_lut,
    multiply_lut,
    permutation_lut,
    quantize_lut,
    relu_lut,
    sign_lut,
)
from repro.api.session import PlutoSession
from repro.errors import CompilationError, ConfigurationError, LUTError
from repro.isa.instructions import (
    BitwiseKind,
    PlutoBitShift,
    PlutoBitwise,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
    ShiftDirection,
)
from repro.isa.program import PlutoProgram
from repro.isa.registers import RegisterFile
from repro.errors import AllocationError


class TestRegisters:
    def test_allocation_and_naming(self):
        registers = RegisterFile()
        row = registers.allocate_row(1024, 8)
        subarray = registers.allocate_subarray(256, "add4")
        assert row.name == "$prg0"
        assert subarray.name == "$lut_rg0"
        assert registers.row(0) is row
        assert registers.subarray(0) is subarray

    def test_exhaustion(self):
        registers = RegisterFile(max_row_registers=1, max_subarray_registers=1)
        registers.allocate_row(8, 8)
        registers.allocate_subarray(4, "x")
        with pytest.raises(AllocationError):
            registers.allocate_row(8, 8)
        with pytest.raises(AllocationError):
            registers.allocate_subarray(4, "y")

    def test_invalid_lookups(self):
        registers = RegisterFile()
        with pytest.raises(AllocationError):
            registers.row(0)
        with pytest.raises(AllocationError):
            registers.allocate_row(0, 8)


class TestInstructions:
    def test_pluto_op_validation(self):
        registers = RegisterFile()
        src = registers.allocate_row(8, 8)
        dst = registers.allocate_row(8, 8)
        lut = registers.allocate_subarray(256, "add4")
        instruction = PlutoOp(dst, src, lut, 256, 8)
        assert "pluto_op" in instruction.render()
        with pytest.raises(ConfigurationError):
            PlutoOp(dst, src, lut, 255, 8)  # not a power of two
        with pytest.raises(ConfigurationError):
            PlutoOp(dst, src, lut, 256, 4)  # element width < index width

    def test_bitwise_operand_counts(self):
        registers = RegisterFile()
        a = registers.allocate_row(8, 8)
        b = registers.allocate_row(8, 8)
        c = registers.allocate_row(8, 8)
        PlutoBitwise(BitwiseKind.AND, c, a, b)
        PlutoBitwise(BitwiseKind.NOT, c, a)
        with pytest.raises(ConfigurationError):
            PlutoBitwise(BitwiseKind.AND, c, a)
        with pytest.raises(ConfigurationError):
            PlutoBitwise(BitwiseKind.NOT, c, a, b)

    def test_shift_renders_amount(self):
        registers = RegisterFile()
        target = registers.allocate_row(8, 8)
        shift = PlutoBitShift(ShiftDirection.LEFT, target, 4)
        assert shift.render() == "pluto_bit_shift_l $prg0, #4"
        with pytest.raises(ConfigurationError):
            PlutoBitShift(ShiftDirection.LEFT, target, -1)

    def test_program_validation_def_before_use(self):
        registers = RegisterFile()
        src = registers.allocate_row(8, 8)
        dst = registers.allocate_row(8, 8)
        program = PlutoProgram()
        program.append(PlutoMove(destination=dst, source=src))
        with pytest.raises(CompilationError):
            program.validate()
        # Adding the allocations first makes the program valid.
        fixed = PlutoProgram()
        fixed.append(PlutoRowAlloc(src, 8, 8))
        fixed.append(PlutoRowAlloc(dst, 8, 8))
        fixed.append(PlutoMove(destination=dst, source=src))
        fixed.validate()

    def test_program_statistics_and_listing(self):
        registers = RegisterFile()
        src = registers.allocate_row(8, 8)
        dst = registers.allocate_row(8, 8)
        lut = registers.allocate_subarray(16, "bc4")
        program = PlutoProgram()
        program.extend(
            [
                PlutoRowAlloc(src, 8, 8),
                PlutoRowAlloc(dst, 8, 8),
                PlutoSubarrayAlloc(lut, 16, "bc4"),
                PlutoOp(dst, src, lut, 16, 8),
            ]
        )
        assert program.lut_queries == 1
        assert len(program) == 4
        listing = program.listing()
        assert "pluto_subarray_alloc" in listing
        assert listing.count("\n") == 3


class TestLutBuilders:
    def test_identity(self):
        lut = identity_lut(4)
        assert lut.query(np.arange(16)).tolist() == list(range(16))

    def test_add_and_multiply(self):
        add4 = add_lut(4)
        mul4 = multiply_lut(4)
        assert add4[(7 << 4) | 8] == 15
        assert mul4[(7 << 4) | 8] == 56
        assert add4.num_entries == 256

    def test_bitwise_lut_truth_table(self):
        xor1 = bitwise_lut("xor", 1)
        assert [xor1[i] for i in range(4)] == [0, 1, 1, 0]
        with pytest.raises(LUTError):
            bitwise_lut("nope")

    def test_bitcount(self):
        bc8 = bitcount_lut(8)
        assert bc8[0xFF] == 8
        assert bc8[0b10101010] == 4

    def test_binarize_threshold(self):
        lut = binarize_lut(127)
        assert lut[127] == 0
        assert lut[128] == 255
        with pytest.raises(LUTError):
            binarize_lut(300)

    def test_color_grade_monotonic(self):
        lut = color_grade_lut()
        values = [lut[i] for i in range(256)]
        assert values[0] == 0
        assert values[255] == 255
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_exponentiation_monotonic(self):
        lut = exponentiation_lut(8)
        values = [lut[i] for i in range(256)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_crc_tables_match_reference_update(self):
        # Verify one table entry of each CRC against a bit-serial computation.
        def crc8_bitwise(byte):
            crc = byte
            for _ in range(8):
                crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
            return crc

        table = crc8_lut()
        assert all(table[i] == crc8_bitwise(i) for i in range(256))
        assert crc16_lut().element_bits == 16
        assert crc32_lut().element_bits == 32

    def test_permutation_lut_validation(self):
        with pytest.raises(LUTError):
            permutation_lut(list(range(255)), bits=8)
        with pytest.raises(LUTError):
            permutation_lut([0] * 256, bits=8)
        lut = permutation_lut(list(reversed(range(256))), bits=8)
        assert lut[0] == 255

    def test_qnn_luts(self):
        sign = sign_lut(8)
        assert sign[127] == 0 and sign[128] == 1
        relu = relu_lut(8)
        assert relu[5] == 5 and relu[200] == 0  # 200 is negative in two's complement
        quant = quantize_lut(8, 4)
        assert quant[0xFF] == 0xF
        with pytest.raises(LUTError):
            quantize_lut(4, 8)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    def test_add_lut_property(self, a, b):
        assert add_lut(4)[(a << 4) | b] == a + b


class TestSession:
    def test_malloc_unique_names(self):
        session = PlutoSession()
        session.pluto_malloc(16, 8, "A")
        with pytest.raises(ConfigurationError):
            session.pluto_malloc(16, 8, "A")

    def test_recorded_calls(self):
        session = PlutoSession()
        a = session.pluto_malloc(16, 4)
        b = session.pluto_malloc(16, 4)
        out = session.pluto_malloc(16, 8)
        call = session.api_pluto_add(a, b, out, bit_width=4)
        assert call.is_lut_query
        assert call.lut.num_entries == 256
        assert len(session.calls) == 1

    def test_operand_width_check(self):
        session = PlutoSession()
        a = session.pluto_malloc(16, 2)
        b = session.pluto_malloc(16, 2)
        out = session.pluto_malloc(16, 8)
        with pytest.raises(ConfigurationError):
            session.api_pluto_add(a, b, out, bit_width=4)

    def test_map_requires_wide_enough_source(self, square_lut):
        session = PlutoSession()
        narrow = session.pluto_malloc(16, 4)
        out = session.pluto_malloc(16, 8)
        with pytest.raises(ConfigurationError):
            session.api_pluto_map(square_lut, narrow, out)

    def test_bitwise_and_shift_validation(self):
        session = PlutoSession()
        a = session.pluto_malloc(16, 8)
        out = session.pluto_malloc(16, 8)
        session.api_pluto_bitwise("not", a, None, out)
        with pytest.raises(ConfigurationError):
            session.api_pluto_bitwise("and", a, None, out)
        with pytest.raises(ConfigurationError):
            session.api_pluto_shift(a, out, -1)
        with pytest.raises(ConfigurationError):
            session.api_pluto_shift(a, out, 2, direction="x")

    def test_api_call_size_consistency(self):
        a = PlutoVector("a", 8, 8)
        b = PlutoVector("b", 16, 8)
        with pytest.raises(ConfigurationError):
            ApiCall(operation="add", inputs=(a, b), output=a)

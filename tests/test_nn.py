"""Tests for the quantized LeNet-5 case study (Section 9 / Table 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.inference import QnnInferenceModel, table7_configurations
from repro.nn.layers import conv2d, conv2d_macs, dense, dense_macs, max_pool2d, relu
from repro.nn.lenet import LeNet5
from repro.nn.mnist import DIGIT_TEMPLATES, synthetic_mnist
from repro.nn.quantization import dequantize, quantize_tensor


class TestQuantization:
    def test_one_bit_is_sign(self):
        tensor = np.array([-2.0, -0.1, 0.0, 0.5, 3.0])
        quantized = quantize_tensor(tensor, 1)
        assert quantized.values.tolist() == [-1, -1, 1, 1, 1]
        assert quantized.bits == 1

    def test_four_bit_range(self):
        tensor = np.linspace(-1, 1, 17)
        quantized = quantize_tensor(tensor, 4)
        assert quantized.values.max() <= 7
        assert quantized.values.min() >= -8

    def test_dequantize_error_bounded(self):
        rng = np.random.default_rng(0)
        tensor = rng.normal(0, 1, 100)
        quantized = quantize_tensor(tensor, 8)
        error = np.abs(dequantize(quantized) - tensor)
        assert error.max() <= quantized.scale

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_tensor(np.zeros(4), 0)


class TestLayers:
    def test_conv2d_known_result(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        kernel = np.ones((1, 1, 2, 2))
        output = conv2d(inputs, kernel)
        assert output.shape == (1, 1, 3, 3)
        assert output[0, 0, 0, 0] == pytest.approx(0 + 1 + 4 + 5)

    def test_conv2d_channel_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            conv2d(np.zeros((1, 2, 4, 4)), np.zeros((1, 3, 2, 2)))

    def test_max_pool(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = max_pool2d(inputs, 2)
        assert pooled.shape == (1, 1, 2, 2)
        assert pooled[0, 0, 1, 1] == 15

    def test_dense_and_relu(self):
        output = dense(np.array([[1.0, -2.0]]), np.array([[1.0], [1.0]]))
        assert output[0, 0] == pytest.approx(-1.0)
        assert relu(output)[0, 0] == 0.0

    def test_mac_counts(self):
        assert conv2d_macs(1, 6, 5, 24, 24) == 6 * 24 * 24 * 25
        assert dense_macs(256, 120) == 30720


class TestSyntheticMnist:
    def test_shapes_and_ranges(self):
        images, labels = synthetic_mnist(32, seed=1)
        assert images.shape == (32, 1, 28, 28)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert set(np.unique(labels)).issubset(set(range(10)))

    def test_deterministic_given_seed(self):
        first = synthetic_mnist(8, seed=5)
        second = synthetic_mnist(8, seed=5)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_templates_cover_all_digits(self):
        assert set(DIGIT_TEMPLATES) == set(range(10))
        for template in DIGIT_TEMPLATES.values():
            assert template.shape == (7, 7)

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            synthetic_mnist(0)


class TestLeNet5:
    def test_mac_count_matches_topology(self):
        network = LeNet5(weight_bits=4)
        assert network.macs_per_image == 86_400 + 153_600 + 30_720 + 10_080 + 840

    def test_forward_shapes(self):
        network = LeNet5(weight_bits=4)
        images, _ = synthetic_mnist(4, seed=0)
        logits = network.logits(images)
        assert logits.shape == (4, 10)
        assert network.predict(images).shape == (4,)

    def test_calibrated_accuracy_above_chance(self):
        network = LeNet5(weight_bits=4)
        train_images, train_labels = synthetic_mnist(150, seed=2)
        test_images, test_labels = synthetic_mnist(80, seed=3)
        network.calibrate(train_images, train_labels)
        assert network.accuracy(test_images, test_labels) > 0.3  # chance is 0.1

    def test_one_bit_network_runs(self):
        network = LeNet5(weight_bits=1)
        images, _ = synthetic_mnist(2, seed=0)
        assert network.logits(images).shape == (2, 10)

    def test_invalid_input_shape_rejected(self):
        network = LeNet5()
        with pytest.raises(ConfigurationError):
            network.features(np.zeros((1, 3, 28, 28)))


class TestTable7:
    def test_configurations(self):
        models = table7_configurations()
        assert [m.bits for m in models] == [1, 4]

    def test_invalid_bit_width_rejected(self):
        with pytest.raises(ConfigurationError):
            QnnInferenceModel(2)

    def test_pluto_fastest_and_most_efficient(self):
        for model in table7_configurations():
            rows = {row.system: row for row in model.table7_rows()}
            pluto = rows["pLUTo-BSA"]
            for system in ("CPU", "GPU", "FPGA"):
                assert pluto.latency_us < rows[system].latency_us
                assert pluto.energy_mj < rows[system].energy_mj

    def test_one_bit_cheaper_than_four_bit_on_pluto(self):
        one_bit, four_bit = table7_configurations()
        one = {r.system: r for r in one_bit.table7_rows()}["pLUTo-BSA"]
        four = {r.system: r for r in four_bit.table7_rows()}["pLUTo-BSA"]
        assert one.latency_us < four.latency_us
        assert one.energy_mj < four.energy_mj

    def test_latencies_in_table7_ballpark(self):
        """Absolute values should be within an order of magnitude of Table 7."""
        one_bit = {r.system: r for r in QnnInferenceModel(1).table7_rows()}
        assert 2 < one_bit["pLUTo-BSA"].latency_us < 230
        assert 25 < one_bit["CPU"].latency_us < 2490
        assert 14 < one_bit["FPGA"].latency_us < 1410

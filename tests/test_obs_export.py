"""Tests for the trace/metrics exposition formats (obs/export.py)."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    metrics_json,
    prometheus_text,
    render_stage_breakdown,
    stage_summary,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RequestTrace


def _trace(name: str = "request", base_ns: int = 1_000_000) -> RequestTrace:
    trace = RequestTrace(name=name)
    submit = trace.add_span("submit", 2_000, start_ns=base_ns)
    submit.children.append(
        type(submit)(name="plan", start_ns=base_ns + 100, duration_ns=500,
                     attributes={"cached": False})
    )
    trace.add_span("execute", 8_000, start_ns=base_ns + 2_000, backend="vectorized")
    return trace


class TestChromeTrace:
    def test_round_trips_through_json_with_valid_events(self):
        document = json.loads(chrome_trace_json([_trace(), _trace("second")]))
        events = document["traceEvents"]
        assert events, "no events emitted"
        metadata = [event for event in events if event["ph"] == "M"]
        spans = [event for event in events if event["ph"] == "X"]
        assert {event["args"]["name"] for event in metadata} == {
            "request", "second",
        }
        for event in spans:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0  # rebased to the earliest span
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_nested_spans_emit_child_events_within_the_parent(self):
        events = chrome_trace_events(_trace())
        by_name = {event["name"]: event for event in events if event.get("ph") == "X"}
        submit, plan = by_name["submit"], by_name["plan"]
        assert submit["ts"] <= plan["ts"]
        assert plan["ts"] + plan["dur"] <= submit["ts"] + submit["dur"]
        assert plan["args"] == {"cached": False}

    def test_single_trace_argument_is_accepted(self):
        events = chrome_trace_events(_trace())
        assert any(event.get("ph") == "X" for event in events)

    def test_non_json_attributes_are_stringified(self):
        trace = RequestTrace(name="r")
        trace.add_span("execute", 10, backend=object())
        json.loads(chrome_trace_json(trace))  # must not raise


class TestPrometheus:
    def test_exposition_parses_line_by_line(self):
        reg = MetricsRegistry()
        reg.counter("pluto_requests_total", "Requests served", path="service").inc(4)
        reg.gauge("pluto_cache_programs_size").set(2)
        reg.histogram("pluto_request_seconds", path="service").observe(0.01)
        text = prometheus_text(reg)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP"):
                assert len(line.split(" ", 3)) == 4
                continue
            if line.startswith("# TYPE"):
                kind = line.split()[3]
                assert kind in {"counter", "gauge", "summary"}
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample line ends in a parseable number
            assert name_part
        assert 'pluto_requests_total{path="service"} 4' in text
        assert "pluto_cache_programs_size 2" in text
        assert 'pluto_request_seconds_count{path="service"} 1' in text
        assert 'quantile="0.5"' in text

    def test_families_are_typed_once(self):
        reg = MetricsRegistry()
        reg.counter("c", path="a").inc()
        reg.counter("c", path="b").inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE c counter") == 1


class TestJsonSnapshot:
    def test_metrics_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc()
        snapshot = json.loads(metrics_json(reg))
        assert snapshot["counters"]["requests"] == 1.0
        assert set(snapshot) == {"counters", "gauges", "histograms"}


class TestStageBreakdown:
    def test_stage_summary_aggregates_top_level_spans(self):
        summary = stage_summary([_trace(), _trace()])
        assert summary["submit"]["count"] == 2.0
        assert summary["submit"]["total_ns"] == 4_000.0
        assert summary["execute"]["mean_ns"] == 8_000.0
        assert "plan" not in summary  # nested spans stay nested

    def test_render_contains_every_stage_and_shares(self):
        table = render_stage_breakdown([_trace()], title="breakdown")
        assert table.splitlines()[0] == "breakdown"
        assert "submit" in table
        assert "execute" in table
        assert "%" in table

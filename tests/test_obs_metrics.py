"""Tests for the unified metrics registry and energy attribution."""

from __future__ import annotations

import pytest

from repro.api.session import PlutoSession, cache_stats
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    command_counts,
    record_cache_stats,
    record_served_request,
    registry,
    request_accounting,
    reset_metrics,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    reset_metrics()
    yield
    reset_metrics()


def _session() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(128, 4, "a")
    b = session.pluto_malloc(128, 4, "b")
    out = session.pluto_malloc(128, 8, "out")
    session.api_pluto_add(a, b, out, bit_width=4)
    return session


def _inputs() -> dict:
    import numpy as np

    rng = np.random.default_rng(11)
    return {
        "a": rng.integers(0, 16, 128),
        "b": rng.integers(0, 16, 128),
    }


class TestRegistry:
    def test_get_or_create_is_stable_per_name_and_labels(self):
        reg = MetricsRegistry()
        first = reg.counter("requests", path="service")
        second = reg.counter("requests", path="service")
        other = reg.counter("requests", path="pool")
        assert first is second
        assert first is not other
        first.inc()
        first.inc(2.5)
        assert first.value == 3.5
        assert other.value == 0.0
        assert len(reg) == 2

    def test_kind_mismatch_is_rejected(self):
        reg = MetricsRegistry()
        reg.counter("metric")
        with pytest.raises(TypeError):
            reg.gauge("metric")

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("requests").inc(-1.0)

    def test_histogram_quantiles_and_summary(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (0.001, 0.002, 0.004, 0.008, 0.1):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5.0
        assert summary["sum"] == pytest.approx(0.115)
        assert summary["max"] == pytest.approx(0.1)
        # log-bucketed with ~7% resolution
        assert histogram.quantile(0.5) == pytest.approx(0.004, rel=0.08)
        # nearest-rank on 5 samples: p99 falls on the 4th observation
        assert summary["p99"] == pytest.approx(0.008, rel=0.08)
        assert histogram.quantile(1.0) == pytest.approx(0.1, rel=0.08)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", path="x").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        snapshot = reg.snapshot()
        assert snapshot["counters"] == {'c{path="x"}': 1.0}
        assert snapshot["gauges"] == {"g": 2.0}
        assert set(snapshot["histograms"]["h"]) == {
            "count", "sum", "mean", "p50", "p95", "p99", "max",
        }


class TestCacheStatsBridge:
    #: The public dict shape of ``cache_stats()`` — routing it through the
    #: registry must not change a single key (downstream dashboards and the
    #: worker pool's final reports consume this exact shape).
    EXPECTED_LAYERS = {
        "programs",
        "shared_store",
        "verifier",
        "optimizer",
        "planner",
        "lut_compositions",
        "trace_templates",
        "compiled_exec",
        "scheduler_merges",
        "hierarchy_schedules",
        "engine_helpers",
        "lut_gather_arrays",
    }

    def test_cache_stats_dict_shape_is_unchanged(self):
        stats = cache_stats()
        assert set(stats) == self.EXPECTED_LAYERS
        for layer, values in stats.items():
            assert isinstance(values, dict), layer

    def test_cache_stats_mirrors_into_pluto_cache_gauges(self):
        cache_stats()
        gauges = registry().snapshot()["gauges"]
        assert "pluto_cache_programs_size" in gauges
        assert "pluto_cache_compiled_exec_size" in gauges
        # every numeric leaf of every layer lands in the registry
        assert any(name.startswith("pluto_cache_verifier") for name in gauges)

    def test_record_cache_stats_recurses_nested_layers(self):
        record_cache_stats({"outer": {"inner": {"deep": 3}, "flat": 1.5}})
        gauges = registry().snapshot()["gauges"]
        assert gauges["pluto_cache_outer_inner_deep"] == 3.0
        assert gauges["pluto_cache_outer_flat"] == 1.5


class TestEnergyAttribution:
    def test_command_counts_and_accounting_from_a_real_run(self):
        result = _session().run(_inputs())
        counts = command_counts(result.trace)
        assert counts
        assert all(count > 0 for count in counts.values())
        accounting = request_accounting(result.trace)
        assert accounting["dram_commands"] == sum(counts.values())
        assert accounting["dram_commands_by_type"] == counts
        assert accounting["energy_pj"] == pytest.approx(
            result.trace.total_energy_nj * 1000.0
        )
        assert 0.0 <= accounting["refresh_overhead_fraction"] < 1.0
        assert accounting["refresh_inflated_latency_ns"] >= (
            result.trace.total_latency_ns
        )
        assert accounting["refresh_commands"] >= 0

    def test_accounting_is_memoized_on_the_trace(self):
        result = _session().run(_inputs())
        first = request_accounting(result.trace)
        second = request_accounting(result.trace)
        assert first == second
        assert "_obs_accounting" in result.trace.__dict__ or (
            "_obs_accounting" in result.trace.__dict__.get("_obs_pins", {})
        )

    def test_template_realizations_share_one_pin_store(self):
        session = _session()
        first = session.run(_inputs())
        second = session.run(_inputs())  # warm path realizes from the same template
        command_counts(first.trace)
        # The second realization must already carry the memoized counts.
        store = second.trace.__dict__.get("_obs_pins")
        if store is not None:  # warm path took the template
            assert "_obs_command_counts" in store


class TestServedRequestRecording:
    def test_record_served_request_populates_all_families(self):
        record_served_request(
            path="service",
            end_to_end_s=0.01,
            queue_wait_s=0.004,
            execute_s=0.006,
            energy_nj=2.5,
            commands={"ACT": 3, "ROW_SWEEP": 1},
        )
        snapshot = registry().snapshot()
        assert snapshot["counters"]['pluto_requests_total{path="service"}'] == 1.0
        assert snapshot["counters"][
            'pluto_energy_pj_total{path="service"}'
        ] == pytest.approx(2500.0)
        assert snapshot["counters"]['pluto_dram_commands_total{type="ACT"}'] == 3.0
        assert (
            snapshot["histograms"]['pluto_request_seconds{path="service"}']["count"]
            == 1.0
        )
        assert (
            snapshot["histograms"]['pluto_queue_wait_seconds{path="service"}']["count"]
            == 1.0
        )

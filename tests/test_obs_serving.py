"""End-to-end tracing through the serving front doors.

The acceptance bar of the observability PR: a served request — through
both :class:`~repro.api.service.PlutoService` and
:class:`~repro.serve.pool.PlutoWorkerPool` — carries a complete span tree
whose stage durations sum to within the recorded end-to-end latency,
plus DRAM command counts and energy in picojoules.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import PlutoSession
from repro.obs.metrics import registry, reset_metrics
from repro.obs.trace import enable_tracing, tracing_enabled

ELEMENTS = 128

#: Span sums are compared against wall-clock intervals measured around
#: them; scheduler jitter between the two clock reads gets this allowance.
SLACK_NS = 2_000_000


@pytest.fixture(autouse=True)
def _traced():
    reset_metrics()
    enable_tracing(True)
    yield
    enable_tracing(False)
    reset_metrics()


def _program() -> tuple[PlutoSession, dict[str, np.ndarray]]:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 4, "a")
    b = session.pluto_malloc(ELEMENTS, 4, "b")
    out = session.pluto_malloc(ELEMENTS, 8, "out")
    session.api_pluto_add(a, b, out, bit_width=4)
    rng = np.random.default_rng(7)
    inputs = {
        "a": rng.integers(0, 16, ELEMENTS),
        "b": rng.integers(0, 16, ELEMENTS),
    }
    return session, inputs


async def _serve(count: int):
    session, inputs = _program()
    async with session.serve(max_queue=max(8, count)) as service:
        return list(
            await asyncio.gather(
                *(service.submit(dict(inputs)) for _ in range(count))
            )
        )


class TestServiceTracing:
    def test_served_request_carries_a_complete_span_tree(self):
        results = asyncio.run(_serve(4))
        for served in results:
            trace = served.request_trace
            assert trace is not None
            names = {span.name for span in trace.spans}
            assert {"submit", "queue_wait", "execute"} <= names
            # turnaround is queue_wait + execute by construction; the span
            # durations must agree with the recorded wall-clock seconds.
            turnaround_ns = served.turnaround_s * 1e9
            staged_ns = sum(
                span.duration_ns
                for span in trace.spans
                if span.name in ("queue_wait", "execute")
            )
            assert staged_ns <= turnaround_ns + SLACK_NS
            assert staged_ns >= 0.5 * turnaround_ns - SLACK_NS

    def test_submit_span_nests_the_planner_when_auto_planning(self):
        async def _serve_auto():
            session, inputs = _program()
            async with session.serve(max_queue=8, plan="auto") as service:
                return await service.submit(dict(inputs))

        served = asyncio.run(_serve_auto())
        trace = served.request_trace
        submit = trace.find("submit")
        assert submit is not None
        nested = {span.name for span in submit.walk()}
        assert "plan" in nested
        plan = trace.find("plan")
        assert "cached" in plan.attributes

    def test_queue_wait_span_notes_the_coalesced_batch(self):
        results = asyncio.run(_serve(4))
        trace = results[-1].request_trace
        coalesce = trace.find("coalesce")
        assert coalesce is not None
        assert coalesce.attributes["batch_size"] >= 1

    def test_trace_attributes_carry_energy_attribution(self):
        results = asyncio.run(_serve(2))
        for served in results:
            attributes = served.request_trace.attributes
            assert attributes["energy_pj"] == pytest.approx(
                served.energy_nj * 1000.0
            )
            assert attributes["dram_commands"] > 0
            assert attributes["dram_commands_by_type"]
            assert 0.0 <= attributes["refresh_overhead_fraction"] < 1.0

    def test_service_requests_land_in_the_registry(self):
        asyncio.run(_serve(3))
        snapshot = registry().snapshot()
        assert snapshot["counters"]['pluto_requests_total{path="service"}'] == 3.0
        assert snapshot["counters"]['pluto_energy_pj_total{path="service"}'] > 0.0
        assert any(
            name.startswith("pluto_dram_commands_total")
            for name in snapshot["counters"]
        )

    def test_tracing_off_leaves_results_untraced(self):
        enable_tracing(False)
        results = asyncio.run(_serve(2))
        assert all(served.request_trace is None for served in results)


class TestSessionTracing:
    def test_run_builds_a_trace_with_pipeline_spans(self):
        session, inputs = _program()
        result = session.run(inputs)
        trace = result.request_trace
        assert trace is not None
        names = [span.name for span in trace.spans]
        assert "execute" in names
        assert trace.attributes["latency_ns"] == pytest.approx(result.latency_ns)
        assert trace.attributes["energy_pj"] == pytest.approx(
            result.trace.total_energy_nj * 1000.0
        )

    def test_run_batch_parallel_records_a_schedule_span(self):
        session, inputs = _program()
        batch = session.run_batch([inputs, inputs], parallel=True)
        trace = batch.request_trace
        assert trace is not None
        assert trace.find("execute") is not None
        assert trace.find("schedule") is not None


class TestPoolTracing:
    def test_pool_results_preserve_worker_side_spans(self):
        from repro.serve import PlutoWorkerPool

        assert tracing_enabled()
        session, inputs = _program()
        with PlutoWorkerPool(workers=1, max_batch=4) as pool:
            assert pool.wait_ready(60)
            futures = pool.submit_many(
                session, [dict(inputs) for _ in range(3)]
            )
            entries = [future.result(60) for future in futures]
        for entry in entries:
            trace = entry.request_trace
            assert trace is not None
            top = [span.name for span in trace.spans]
            assert top == ["pool_rpc", "worker"]
            worker = trace.spans[1]
            worker_stages = {child.name for child in worker.children}
            assert {"submit", "queue_wait", "execute"} <= worker_stages
            # grafted spans sum to the wrapper; wrapper + rpc = end to end
            assert trace.total_ns > 0
            assert trace.attributes["energy_pj"] == pytest.approx(
                entry.energy_nj * 1000.0
            )
        snapshot = registry().snapshot()
        assert snapshot["counters"]['pluto_requests_total{path="pool"}'] == 3.0


class TestObsCli:
    def test_module_entry_point_prints_a_breakdown(self, capsys, tmp_path):
        from repro.obs.__main__ import main

        chrome = tmp_path / "trace.json"
        code = main(
            [
                "--workload", "crc",
                "--requests", "2",
                "--elements", "64",
                "--chrome", str(chrome),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-stage latency breakdown" in out
        assert "modelled energy" in out
        import json

        document = json.loads(chrome.read_text())
        assert document["traceEvents"]

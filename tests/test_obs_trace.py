"""Tests for the request-tracing core (obs/trace.py)."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    RequestTrace,
    Span,
    activate,
    current_trace,
    deactivate,
    new_trace,
    span_of,
    stage,
    tracing,
    tracing_enabled,
)


class TestEnableDisable:
    def test_disabled_by_default_and_scoped_enable(self):
        assert not tracing_enabled()
        with tracing():
            assert tracing_enabled()
        assert not tracing_enabled()

    def test_new_trace_returns_none_when_disabled(self):
        assert new_trace("request") is None
        with tracing():
            trace = new_trace("request", request_id=7)
            assert isinstance(trace, RequestTrace)
            assert trace.request_id == 7

    def test_stage_is_noop_without_active_trace(self):
        with tracing():
            assert stage("plan") is NOOP_SPAN
        # and when disabled entirely, even with a trace active
        trace = RequestTrace(name="r")
        token = activate(trace)
        try:
            assert stage("plan") is NOOP_SPAN
        finally:
            deactivate(token)

    def test_span_of_none_is_noop(self):
        scope = span_of(None, "anything")
        assert scope is NOOP_SPAN
        with scope as span:
            span.set(ignored=True)  # must not raise


class TestSpanTree:
    def test_spans_nest_through_the_scope_stack(self):
        trace = RequestTrace(name="r")
        with trace.span("outer") as outer:
            with trace.span("inner", detail=1) as inner:
                pass
        assert [span.name for span in trace.spans] == ["outer"]
        assert [child.name for child in outer.children] == ["inner"]
        assert inner.attributes == {"detail": 1}
        assert outer.duration_ns >= inner.duration_ns >= 0
        assert inner.start_ns >= outer.start_ns

    def test_stage_attaches_to_context_active_trace(self):
        trace = RequestTrace(name="r")
        token = activate(trace)
        try:
            with tracing():
                assert current_trace() is trace
                with stage("verify", checks=3) as span:
                    assert isinstance(span, Span)
        finally:
            deactivate(token)
        assert trace.spans[0].name == "verify"
        assert trace.spans[0].attributes == {"checks": 3}

    def test_add_span_records_premeasured_durations(self):
        trace = RequestTrace(name="r")
        span = trace.add_span("queue_wait", 5_000, batch_size=4)
        assert span.duration_ns == 5_000
        assert span.end_ns == span.start_ns + 5_000
        assert trace.total_ns == 5_000
        assert trace.stage_totals() == {"queue_wait": 5_000}

    def test_find_and_walk_cover_the_whole_tree(self):
        trace = RequestTrace(name="r")
        with trace.span("execute"):
            with trace.span("compile"):
                pass
        assert trace.find("compile") is not None
        assert trace.find("missing") is None
        assert [span.name for span in trace.walk()] == ["execute", "compile"]


class TestGraft:
    def test_graft_rebases_foreign_clocks_under_a_wrapper(self):
        worker = RequestTrace(name="worker-side")
        worker.add_span("execute", 2_000, start_ns=1_000_000_000)
        worker.annotate(backend="vectorized")
        pool = RequestTrace(name="pool")
        wrapper = pool.graft(worker, under="worker", start_ns=50, worker=3)
        assert wrapper.name == "worker"
        assert wrapper.duration_ns == worker.total_ns
        assert wrapper.attributes["worker"] == 3
        assert wrapper.attributes["worker_attributes"] == {"backend": "vectorized"}
        grafted = wrapper.children[0]
        assert grafted.name == "execute"
        # The earliest worker span is shifted to the wrapper's start.
        assert grafted.start_ns == 50

    def test_pickle_round_trip_drops_open_spans(self):
        trace = RequestTrace(name="r")
        scope = trace.span("execute")
        scope.__enter__()  # leave the span open on purpose
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._stack == []
        assert [span.name for span in clone.spans] == ["execute"]
        scope.__exit__(None, None, None)


class TestOverheadShape:
    def test_disabled_stage_allocates_nothing(self):
        # The disabled path must return the shared singleton, not a fresh
        # object per call — this is what keeps the hot path under the gate.
        scopes = {id(stage("a")) for _ in range(16)}
        assert scopes == {id(NOOP_SPAN)}

    def test_span_sums_stay_within_wall_clock(self):
        import time

        trace = RequestTrace(name="r")
        begin = time.perf_counter_ns()
        with trace.span("outer"):
            with trace.span("inner"):
                sum(range(1000))
        wall = time.perf_counter_ns() - begin
        assert 0 < trace.total_ns <= wall

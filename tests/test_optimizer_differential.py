"""Randomized differential testing of the program optimizer.

A small program generator builds API programs exercising every shape the
passes rewrite — unary LUT chains, diamonds joined by bitwise logic, a
binary-LUT head feeding map chains, content-duplicated tables, and dead
branches (outputs declared as a subset) — and every generated program is
executed optimized and unoptimized, asserting **bit-identical** declared
outputs across the functional/vectorized backends, the three pLUTo
designs, and sharded execution (``shards=N`` composing with
``optimize=True`` through the ``ShardPlanner``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.handles import ApiCall
from repro.api.luts import add_lut
from repro.api.session import PlutoSession
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.core.lut import LookupTable, lut_from_function
from repro.opt import optimize_program
from repro.opt.analysis import natural_output_names

ELEMENTS = 24

#: A small pool of 256-entry tables; ``dup`` entries are content-equal
#: twins under different names, so programs exercise LUT deduplication.
_LUT_POOL: list[LookupTable] = []


def _lut_pool() -> list[LookupTable]:
    if not _LUT_POOL:
        base = [
            lut_from_function(lambda x: (x * x) & 0xFF, 8, 8, name="square8"),
            lut_from_function(lambda x: (x + 7) & 0xFF, 8, 8, name="add7"),
            lut_from_function(lambda x: x ^ 0x5A, 8, 8, name="xor5a"),
            lut_from_function(lambda x: (x >> 1) | ((x & 1) << 7), 8, 8, name="ror1"),
        ]
        twins = [
            LookupTable(
                values=lut.values,
                index_bits=8,
                element_bits=8,
                name=f"{lut.name}-twin",
            )
            for lut in base[:2]
        ]
        _LUT_POOL.extend(base + twins)
    return _LUT_POOL


def random_program(
    rng: np.random.Generator, operations: int = 10
) -> tuple[PlutoSession, dict[str, np.ndarray], list[str]]:
    """Generate one program plus inputs and a declared-output subset.

    The 8-bit value pool only ever holds results of 256-entry table
    queries, bitwise logic, shifts, and moves of 8-bit data, so every
    LUT index stays in range on both backends.  A 4-bit "island" of two
    extra inputs feeds an ``api_pluto_add`` whose (<= 30) sums seed the
    pool through the binary-LUT head pattern the fusion pass folds.
    """
    session = PlutoSession()
    pool = [session.pluto_malloc(ELEMENTS, 8, f"in{i}") for i in range(2)]
    inputs = {
        vector.name: rng.integers(0, 256, ELEMENTS, dtype=np.uint64)
        for vector in pool
    }
    if rng.random() < 0.7:  # the binary-LUT island
        left = session.pluto_malloc(ELEMENTS, 4, "nib_a")
        right = session.pluto_malloc(ELEMENTS, 4, "nib_b")
        inputs[left.name] = rng.integers(0, 16, ELEMENTS, dtype=np.uint64)
        inputs[right.name] = rng.integers(0, 16, ELEMENTS, dtype=np.uint64)
        total = session.pluto_malloc(ELEMENTS, 8, "nib_sum")
        session.api_pluto_add(left, right, total, bit_width=4)
        pool.append(total)
    luts = _lut_pool()
    for index in range(operations):
        choice = rng.random()
        out = session.pluto_malloc(ELEMENTS, 8, f"t{index}")
        if choice < 0.6:  # unary LUT query (chains when sources repeat)
            lut = luts[int(rng.integers(len(luts)))]
            source = pool[int(rng.integers(len(pool)))]
            session.api_pluto_map(lut, source, out)
        elif choice < 0.8:  # bitwise join (diamonds)
            operation = ("and", "or", "xor")[int(rng.integers(3))]
            a = pool[int(rng.integers(len(pool)))]
            b = pool[int(rng.integers(len(pool)))]
            session.api_pluto_bitwise(operation, a, b, out)
        elif choice < 0.9:  # move
            session.api_pluto_move(pool[int(rng.integers(len(pool)))], out)
        else:  # shift
            session.api_pluto_shift(
                pool[int(rng.integers(len(pool)))],
                out,
                int(rng.integers(0, 4)),
                "l" if rng.random() < 0.5 else "r",
            )
        pool.append(out)
        if rng.random() < 0.35 and len(pool) > 3:
            # Re-offer an old vector so chains and diamonds form.
            pool.append(pool[int(rng.integers(len(pool)))])
    outputs = sorted(natural_output_names(session.calls))
    keep = max(1, int(rng.integers(1, len(outputs) + 1)))
    declared = sorted(rng.choice(outputs, size=keep, replace=False).tolist())
    return session, inputs, declared


def _external_inputs(calls: list[ApiCall], inputs: dict) -> dict:
    produced = {call.output.name for call in calls}
    needed = {
        operand.name
        for call in calls
        for operand in call.inputs
        if operand.name not in produced
    }
    return {name: inputs[name] for name in needed}


def _run(
    calls: list[ApiCall],
    inputs: dict,
    *,
    backend: str,
    engine: PlutoEngine,
    shards: int,
) -> dict[str, np.ndarray]:
    session = PlutoSession(calls=list(calls), backend=backend)
    result = session.run(_external_inputs(list(calls), inputs), engine=engine, shards=shards)
    return result.registers


@pytest.mark.parametrize("seed", range(8))
def test_differential_vectorized_all_designs(seed, any_design):
    rng = np.random.default_rng(1000 + seed)
    session, inputs, declared = random_program(rng)
    optimized = optimize_program(session.calls, outputs=declared)
    engine = PlutoEngine(PlutoConfig(design=any_design))
    for shards in (1, 3):
        reference = _run(
            session.calls, inputs, backend="vectorized", engine=engine, shards=shards
        )
        rewritten = _run(
            list(optimized.calls),
            inputs,
            backend="vectorized",
            engine=engine,
            shards=shards,
        )
        for name in declared:
            assert np.array_equal(reference[name], rewritten[name]), (
                f"seed {seed}, design {any_design}, shards {shards}: "
                f"output {name!r} diverged"
            )


@pytest.mark.parametrize("seed", range(2))
def test_differential_functional_backend(seed, any_design):
    rng = np.random.default_rng(2000 + seed)
    session, inputs, declared = random_program(rng, operations=6)
    optimized = optimize_program(session.calls, outputs=declared)
    engine = PlutoEngine(PlutoConfig(design=any_design))
    reference = _run(
        session.calls, inputs, backend="functional", engine=engine, shards=1
    )
    rewritten = _run(
        list(optimized.calls), inputs, backend="functional", engine=engine, shards=1
    )
    for name in declared:
        assert np.array_equal(reference[name], rewritten[name])


def test_functional_sharded_optimized_composes():
    rng = np.random.default_rng(31)
    session, inputs, declared = random_program(rng, operations=5)
    optimized = optimize_program(session.calls, outputs=declared)
    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
    reference = _run(
        session.calls, inputs, backend="vectorized", engine=engine, shards=1
    )
    sharded = _run(
        list(optimized.calls), inputs, backend="functional", engine=engine, shards=2
    )
    for name in declared:
        assert np.array_equal(reference[name], sharded[name])


@pytest.mark.parametrize("seed", range(4))
def test_differential_compiled_tier(seed, any_design):
    """The whole-program compiled tier is bit-identical — outputs,
    registers, AND command traces — to the interpreted vectorized walk
    and the functional oracle, on both the raw and the optimized program
    of every fuzzed shape, with fused sharded execution matching too."""
    from repro.api.session import compile_cached_with_key
    from repro.controller.dispatch import ParallelDispatcher
    from repro.controller.executor import PlutoController

    rng = np.random.default_rng(3000 + seed)
    session, inputs, declared = random_program(rng)
    optimized = optimize_program(session.calls, outputs=declared)
    engine = PlutoEngine(PlutoConfig(design=any_design))
    jit = PlutoController(engine, backend="vectorized")
    interp = PlutoController(engine, backend="vectorized", jit=False)
    oracle = PlutoController(engine, backend="functional")
    for calls in (list(session.calls), list(optimized.calls)):
        compiled, key = compile_cached_with_key(calls)
        external = _external_inputs(calls, inputs)
        result = jit.execute(compiled, dict(external), structure_key=key)
        for reference in (
            interp.execute(compiled, dict(external), structure_key=key),
            oracle.execute(compiled, dict(external), structure_key=key),
        ):
            for name, data in reference.registers.items():
                assert np.array_equal(result.registers[name], data), name
            assert (
                result.trace.total_latency_ns
                == reference.trace.total_latency_ns
            )
            assert (
                result.trace.total_energy_nj == reference.trace.total_energy_nj
            )
            assert [
                (cmd.kind, cmd.bank, cmd.rows)
                for cmd in result.trace.commands
            ] == [
                (cmd.kind, cmd.bank, cmd.rows)
                for cmd in reference.trace.commands
            ]
        # Fused sharded execution routes through the compiled closure
        # when the program supports it and must match the per-shard
        # functional oracle exactly.
        fused = ParallelDispatcher(engine, fused=True).execute(
            calls, external, shards=3
        )
        sharded_oracle = ParallelDispatcher(engine, backend="functional").execute(
            calls, external, shards=3
        )
        for name, data in sharded_oracle.outputs.items():
            assert np.array_equal(fused.outputs[name], data), name
        assert fused.makespan_ns == sharded_oracle.makespan_ns


def test_corpus_actually_optimizes_something():
    """The generator must produce rewrite opportunities, or the suite is vacuous."""
    saved = 0
    for seed in range(10):
        rng = np.random.default_rng(1000 + seed)
        session, _, declared = random_program(rng)
        report = optimize_program(session.calls, outputs=declared).report
        saved += report.lut_queries_saved + report.ops_saved
    assert saved > 0


def test_vectorized_matches_functional_after_optimization():
    """Optimized programs stay backend-agnostic (same outputs both paths)."""
    rng = np.random.default_rng(77)
    session, inputs, declared = random_program(rng, operations=6)
    optimized = optimize_program(session.calls, outputs=declared)
    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.GMC))
    vectorized = _run(
        list(optimized.calls), inputs, backend="vectorized", engine=engine, shards=1
    )
    functional = _run(
        list(optimized.calls), inputs, backend="functional", engine=engine, shards=1
    )
    for name in declared:
        assert np.array_equal(vectorized[name], functional[name])

"""Unit tests for the program optimizer (repro/opt)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.luts import add_lut, binarize_lut, color_grade_lut, identity_lut, relu_lut
from repro.api.session import PlutoSession
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.core.lut import LookupTable, lut_from_function
from repro.errors import CompilationError
from repro.isa.instructions import PlutoSubarrayAlloc
from repro.opt import (
    CommonSubexpressionEliminationPass,
    DeadOpEliminationPass,
    LutChainFusionPass,
    LutDeduplicationPass,
    can_compose,
    clear_optimizer_cache,
    compose_luts,
    optimize_cached,
    optimize_program,
    optimizer_cache_stats,
    program_metrics,
)

N = 48


def _inputs(names=("px",), width=8, seed=0):
    rng = np.random.default_rng(seed)
    return {name: rng.integers(0, 1 << width, N, dtype=np.uint64) for name in names}


def _chain_session() -> PlutoSession:
    """px -> grade -> binarize -> identity, a pure unary LUT chain."""
    session = PlutoSession()
    px = session.pluto_malloc(N, 8, "px")
    a = session.pluto_malloc(N, 8, "a")
    b = session.pluto_malloc(N, 8, "b")
    c = session.pluto_malloc(N, 8, "c")
    session.api_pluto_map(color_grade_lut(), px, a)
    session.api_pluto_map(binarize_lut(127), a, b)
    session.api_pluto_map(identity_lut(8), b, c)
    return session


class TestLutComposition:
    def test_compose_is_exact(self):
        inner, outer = color_grade_lut(), binarize_lut(127)
        fused = compose_luts(inner, outer)
        indices = np.arange(256, dtype=np.uint64)
        assert np.array_equal(fused.query(indices), outer.query(inner.query(indices)))
        assert fused.index_bits == inner.index_bits
        assert fused.element_bits == outer.element_bits

    def test_compose_requires_covered_domain(self):
        wide = lut_from_function(lambda x: x, 8, 8, name="wide")
        narrow = lut_from_function(lambda x: x, 4, 4, name="narrow")
        assert not can_compose(wide, narrow)  # 255 cannot index 16 entries
        assert can_compose(narrow, wide)


class TestFusionPass:
    def test_unary_chain_collapses_to_one_query(self):
        session = _chain_session()
        optimized = optimize_program(session.calls)
        assert optimized.report.before.lut_queries == 3
        assert optimized.report.after.lut_queries == 1
        (call,) = optimized.calls
        assert call.operation == "map"
        assert call.inputs[0].name == "px"
        assert call.output.name == "c"

    def test_multi_consumer_intermediate_blocks_fusion(self):
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        a = session.pluto_malloc(N, 8, "a")
        b = session.pluto_malloc(N, 8, "b")
        c = session.pluto_malloc(N, 8, "c")
        session.api_pluto_map(color_grade_lut(), px, a)
        session.api_pluto_map(binarize_lut(127), a, b)
        session.api_pluto_map(identity_lut(8), a, c)  # second consumer of a
        optimized = optimize_program(session.calls)
        assert optimized.report.after.lut_queries == 3

    def test_preserved_intermediate_blocks_fusion(self):
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        a = session.pluto_malloc(N, 8, "a")
        b = session.pluto_malloc(N, 8, "b")
        session.api_pluto_map(color_grade_lut(), px, a)
        session.api_pluto_map(binarize_lut(127), a, b)
        # 'a' is consumed once, but declaring it an output pins it.
        optimized = optimize_program(session.calls, outputs=["a", "b"])
        assert optimized.report.after.lut_queries == 2

    def test_binary_head_fuses_into_fused_lut(self):
        session = PlutoSession()
        a = session.pluto_malloc(N, 4, "a")
        b = session.pluto_malloc(N, 4, "b")
        t = session.pluto_malloc(N, 8, "t")
        out = session.pluto_malloc(N, 8, "out")
        session.api_pluto_add(a, b, t, bit_width=4)
        session.api_pluto_map(relu_lut(8), t, out)
        optimized = optimize_program(session.calls)
        (call,) = optimized.calls
        assert call.operation == "fused_lut"
        assert call.parameters["bit_width"] == 4
        inputs = _inputs(("a", "b"), width=4)
        expected = PlutoSession(calls=list(session.calls)).run(inputs).outputs["out"]
        got = PlutoSession(calls=list(optimized.calls)).run(inputs).outputs["out"]
        assert np.array_equal(expected, got)


class TestCsePass:
    def test_diamond_reuses_shared_subexpression(self):
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        a = session.pluto_malloc(N, 8, "a")
        b = session.pluto_malloc(N, 8, "b")
        out = session.pluto_malloc(N, 8, "out")
        session.api_pluto_map(color_grade_lut(), px, a)
        session.api_pluto_map(color_grade_lut(), px, b)  # duplicate of a
        session.api_pluto_bitwise("xor", a, b, out)
        optimized = optimize_program(session.calls)
        assert optimized.report.after.lut_queries == 1
        xor = optimized.calls[-1]
        assert {operand.name for operand in xor.inputs} == {"a"}
        result = PlutoSession(calls=list(optimized.calls)).run(_inputs())
        assert np.array_equal(result.outputs["out"], np.zeros(N, dtype=np.uint64))

    def test_preserved_duplicate_becomes_move(self):
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        a = session.pluto_malloc(N, 8, "a")
        b = session.pluto_malloc(N, 8, "b")
        out = session.pluto_malloc(N, 8, "out")
        session.api_pluto_map(color_grade_lut(), px, a)
        session.api_pluto_bitwise("xor", a, px, out)  # keeps 'a' unfused
        session.api_pluto_map(color_grade_lut(), px, b)  # duplicate, but b is an output
        optimized = optimize_program(session.calls)
        operations = sorted(call.operation for call in optimized.calls)
        assert operations == ["map", "move", "xor"]
        inputs = _inputs()
        expected = PlutoSession(calls=list(session.calls)).run(inputs)
        got = PlutoSession(calls=list(optimized.calls)).run(inputs)
        assert sorted(expected.outputs) == sorted(got.outputs)
        for name in expected.outputs:
            assert np.array_equal(expected.outputs[name], got.outputs[name])

    def test_duplicate_of_preserved_output_left_alone(self):
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        a = session.pluto_malloc(N, 8, "a")
        b = session.pluto_malloc(N, 8, "b")
        session.api_pluto_map(color_grade_lut(), px, a)
        session.api_pluto_map(color_grade_lut(), px, b)
        # Both results are program outputs; aliasing either would change
        # the output set, so nothing may be rewritten.
        optimized = optimize_program(session.calls)
        assert [call.operation for call in optimized.calls] == ["map", "map"]

    def test_output_width_is_part_of_the_expression(self):
        session = PlutoSession()
        x = session.pluto_malloc(N, 8, "x")
        wide = session.pluto_malloc(N, 8, "wide")
        narrow = session.pluto_malloc(N, 2, "narrow")
        w2 = session.pluto_malloc(N, 8, "w2")
        n2 = session.pluto_malloc(N, 8, "n2")
        session.api_pluto_shift(x, wide, 1)
        session.api_pluto_shift(x, narrow, 1)  # masked to 2 bits: different values
        session.api_pluto_move(wide, w2)
        session.api_pluto_move(narrow, n2)
        optimized = optimize_program(session.calls)
        result = PlutoSession(calls=list(optimized.calls)).run(_inputs(("x",)))
        reference = PlutoSession(calls=list(session.calls)).run(_inputs(("x",)))
        for name in ("w2", "n2"):
            assert np.array_equal(result.outputs[name], reference.outputs[name])


class TestDeadOpElimination:
    def test_explicit_outputs_drop_dead_branches(self):
        session = _chain_session()
        px = session.vectors[0]
        dead = session.pluto_malloc(N, 8, "dead")
        session.api_pluto_map(identity_lut(8), px, dead)
        optimized = optimize_program(session.calls, outputs=["c"])
        assert all(call.output.name != "dead" for call in optimized.calls)
        assert optimized.report.after.lut_queries == 1

    def test_natural_outputs_keep_everything(self):
        session = _chain_session()
        dead_ish = session.pluto_malloc(N, 8, "tip")
        session.api_pluto_map(identity_lut(8), session.vectors[0], dead_ish)
        optimized = optimize_program(session.calls)
        # 'tip' is produced-but-unconsumed, i.e. a natural output: kept.
        assert any(call.output.name == "tip" for call in optimized.calls)

    def test_unknown_output_rejected(self):
        session = _chain_session()
        with pytest.raises(CompilationError):
            optimize_program(session.calls, outputs=["nope"])
        with pytest.raises(CompilationError):
            optimize_program(session.calls, outputs=[])


class TestLutDeduplication:
    def test_content_equal_tables_share_one_load(self):
        twin = LookupTable(
            values=color_grade_lut().values,
            index_bits=8,
            element_bits=8,
            name="grade-copy",
        )
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        a = session.pluto_malloc(N, 8, "a")
        b = session.pluto_malloc(N, 8, "b")
        session.api_pluto_map(color_grade_lut(), px, a)
        session.api_pluto_map(twin, px, b)
        optimized = optimize_program(session.calls)
        assert optimized.report.before.lut_loads == 2
        assert optimized.report.after.lut_loads == 1
        compiled = PlutoSession(calls=list(optimized.calls)).compile()
        allocs = [
            instruction
            for instruction in compiled.program
            if isinstance(instruction, PlutoSubarrayAlloc)
        ]
        assert len(allocs) == 1

    def test_compiler_keeps_distinct_tables_sharing_a_name_apart(self):
        """Regression: LUT registers bind per table, not per name."""
        first = lut_from_function(lambda x: x, 4, 4, name="lut")
        second = lut_from_function(lambda x: 15 - x, 4, 4, name="lut")
        session = PlutoSession()
        x = session.pluto_malloc(N, 4, "x")
        a = session.pluto_malloc(N, 4, "a")
        b = session.pluto_malloc(N, 4, "b")
        session.api_pluto_map(first, x, a)
        session.api_pluto_map(second, x, b)
        inputs = {"x": np.arange(N, dtype=np.uint64) % 16}
        result = PlutoSession(calls=list(session.calls)).run(inputs)
        assert np.array_equal(result.outputs["a"], inputs["x"])
        assert np.array_equal(result.outputs["b"], 15 - inputs["x"])


class TestReportAndCache:
    def test_report_counters(self):
        session = _chain_session()
        optimized = optimize_program(session.calls)
        report = optimized.report
        assert report.ops_saved == 2
        assert report.lut_queries_saved == 2
        assert report.swept_rows_saved == 512
        assert report.lut_query_reduction == pytest.approx(2 / 3)
        assert report.sweep_reduction == pytest.approx(2 / 3)
        assert report.changed
        assert "row sweeps" in report.summary()
        assert report.counters()["lut_queries_saved"] == 2

    def test_metrics_cover_distinct_luts(self):
        session = _chain_session()
        metrics = program_metrics(session.calls)
        assert metrics.ops == 3
        assert metrics.lut_queries == 3
        assert metrics.swept_lut_rows == 3 * 256
        assert metrics.lut_loads == 3

    def test_optimize_cached_memoizes_on_structure(self):
        clear_optimizer_cache()
        session = _chain_session()
        first = optimize_cached(session.calls)
        second = optimize_cached(list(session.calls))
        assert first is second
        stats = optimizer_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_identity_program_reports_no_change(self):
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        out = session.pluto_malloc(N, 8, "out")
        session.api_pluto_map(color_grade_lut(), px, out)
        optimized = optimize_program(session.calls)
        assert not optimized.report.changed
        assert list(optimized.calls) == list(session.calls)


class TestSessionIntegration:
    def test_run_optimize_bit_identical_with_report(self):
        session = _chain_session()
        inputs = _inputs()
        plain = session.run(inputs)
        optimized = session.run(inputs, optimize=True)
        assert sorted(plain.outputs) == sorted(optimized.outputs)
        for name in plain.outputs:
            assert np.array_equal(plain.outputs[name], optimized.outputs[name])
        assert plain.optimization is None
        assert optimized.optimization is not None
        assert optimized.lut_queries < plain.lut_queries
        assert optimized.latency_ns < plain.latency_ns

    def test_engine_config_default_and_override(self):
        session = _chain_session()
        inputs = _inputs()
        engine = PlutoEngine(PlutoConfig(optimize=True))
        assert session.run(inputs, engine=engine).optimization is not None
        assert (
            session.run(inputs, engine=engine, optimize=False).optimization is None
        )

    def test_sharded_run_plans_over_optimized_calls(self):
        session = _chain_session()
        inputs = _inputs()
        plain = session.run(inputs, shards=4)
        optimized = session.run(inputs, shards=4, optimize=True)
        assert np.array_equal(plain.outputs["c"], optimized.outputs["c"])
        assert optimized.lut_queries < plain.lut_queries
        assert optimized.makespan_ns < plain.makespan_ns
        assert optimized.optimization is not None

    def test_hierarchical_run_optimizes(self):
        session = _chain_session()
        inputs = _inputs()
        plain = session.run_hierarchical(inputs)
        optimized = session.run_hierarchical(inputs, optimize=True)
        assert np.array_equal(plain.outputs["c"], optimized.outputs["c"])
        assert optimized.makespan_ns < plain.makespan_ns

    def test_run_batch_optimizes_once(self):
        session = _chain_session()
        inputs = _inputs()
        batch = session.run_batch([inputs, inputs], optimize=True)
        plain = session.run(inputs)
        for result in batch:
            assert np.array_equal(result.outputs["c"], plain.outputs["c"])


class TestUnhashablePrograms:
    def test_unhashable_parameters_optimize_uncached(self):
        """List-valued parameters bypass the memo instead of crashing."""
        clear_optimizer_cache()
        session = _chain_session()
        session.calls[0].parameters["taps"] = [1, 2, 3]
        inputs = _inputs()
        plain = session.run(inputs)
        optimized = session.run(inputs, optimize=True)  # must not raise
        for name in plain.outputs:
            assert np.array_equal(plain.outputs[name], optimized.outputs[name])
        assert optimizer_cache_stats()["uncached"] == 1  # bypassed, not cached

    def test_cse_skips_unhashable_duplicates(self):
        session = PlutoSession()
        px = session.pluto_malloc(N, 8, "px")
        a = session.pluto_malloc(N, 8, "a")
        b = session.pluto_malloc(N, 8, "b")
        session.api_pluto_map(color_grade_lut(), px, a)
        session.api_pluto_map(color_grade_lut(), px, b)
        for call in session.calls:
            call.parameters["taps"] = [1, 2]
        rewritten, stats = CommonSubexpressionEliminationPass().run(
            list(session.calls), frozenset({"a", "b"})
        )
        assert stats.changed == 0 and len(rewritten) == 2

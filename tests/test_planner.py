"""Tests for the cost-based auto-planner and the ExecutionPlan front door."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api.session import PlutoSession
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.analytic import merge_cache_stats
from repro.controller.hierarchy import hierarchy_cache_stats
from repro.errors import ConfigurationError, VerificationError
from repro.plan import (
    ExecutionPlan,
    clear_planner_cache,
    plan_program,
    planner_cache_stats,
    resolve_plan,
)
from repro.workloads.programs import optimizer_workload_programs, workload_program

ELEMENTS = 1024


def _add_program(elements: int = ELEMENTS) -> tuple[PlutoSession, dict]:
    session = PlutoSession()
    a = session.pluto_malloc(elements, 4, "a")
    b = session.pluto_malloc(elements, 4, "b")
    out = session.pluto_malloc(elements, 8, "out")
    session.api_pluto_add(a, b, out, bit_width=4)
    rng = np.random.default_rng(11)
    inputs = {
        "a": rng.integers(0, 16, elements),
        "b": rng.integers(0, 16, elements),
    }
    return session, inputs


class TestExecutionPlanValidation:
    def test_default_plan_is_explicit_single_shard(self):
        plan = ExecutionPlan()
        assert not plan.is_auto
        assert plan.effective_shards == 1
        assert not plan.hierarchical

    def test_resolve_plan_accepts_auto_string_and_none(self):
        assert resolve_plan(None) == ExecutionPlan()
        assert resolve_plan("auto").is_auto
        assert resolve_plan(ExecutionPlan(shards=4)).shards == 4
        with pytest.raises(ConfigurationError):
            resolve_plan("fastest")
        with pytest.raises(ConfigurationError):
            resolve_plan(42)

    def test_plans_are_hashable_and_frozen(self):
        plan = ExecutionPlan(shards=4, optimize=True)
        assert hash(plan) == hash(ExecutionPlan(shards=4, optimize=True))
        with pytest.raises(AttributeError):
            plan.shards = 8

    def test_auto_with_pinned_geometry_is_contradictory(self):
        with pytest.raises(VerificationError):
            ExecutionPlan(mode="auto", shards=4)
        with pytest.raises(VerificationError):
            ExecutionPlan(mode="auto", hierarchical=True)

    def test_placement_requires_hierarchical(self):
        with pytest.raises(VerificationError):
            ExecutionPlan(channels=2)
        with pytest.raises(VerificationError):
            ExecutionPlan(ranks=2)
        plan = ExecutionPlan(hierarchical=True, channels=2, ranks=2)
        assert plan.channels == 2

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionPlan(shards=0)
        with pytest.raises(ConfigurationError):
            ExecutionPlan(mode="fastest")
        with pytest.raises(ConfigurationError):
            ExecutionPlan(tier="gpu")
        with pytest.raises(ConfigurationError):
            ExecutionPlan(hierarchical=True, channels=0)


class TestPlutoConfigPlanValidation:
    def test_config_accepts_auto_and_plan_objects(self):
        assert PlutoConfig(plan="auto").plan == "auto"
        config = PlutoConfig(plan=ExecutionPlan(shards=8))
        assert config.plan.shards == 8

    def test_config_rejects_overcommitted_shards(self):
        # Default DDR4 module: 1 channel x 1 rank x 16 banks.
        with pytest.raises(VerificationError):
            PlutoConfig(plan=ExecutionPlan(shards=64))

    def test_config_rejects_placement_wider_than_device(self):
        with pytest.raises(VerificationError):
            PlutoConfig(plan=ExecutionPlan(hierarchical=True, channels=2))
        # Widening the device makes the same plan legal.
        config = PlutoConfig(
            channels=2, plan=ExecutionPlan(hierarchical=True, channels=2)
        )
        assert config.channels == 2

    def test_config_rejects_non_plan_types(self):
        with pytest.raises(ConfigurationError):
            PlutoConfig(plan=4)

    def test_engine_config_plan_is_run_default(self):
        session, inputs = _add_program(256)
        engine = PlutoEngine(PlutoConfig(plan=ExecutionPlan(shards=4)))
        result = session.run(inputs, engine=engine)
        assert result.execution_plan.shards == 4
        assert result.num_shards == 4


class TestPlannerMemoization:
    def test_second_plan_is_cache_hit_with_zero_analytic_calls(self):
        clear_planner_cache()
        session, _ = _add_program()
        engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
        first = plan_program(session.calls, engine)
        assert not first.report.cached
        stats = planner_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0

        merges_before = dict(merge_cache_stats())
        hierarchy_before = dict(hierarchy_cache_stats())
        second = plan_program(session.calls, engine)
        assert second.report.cached
        assert second.plan == first.plan
        stats = planner_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        # The cache hit prices nothing: the analytic scheduler memos are
        # untouched (no hits, no misses — zero model calls).
        assert dict(merge_cache_stats()) == merges_before
        assert dict(hierarchy_cache_stats()) == hierarchy_before

    def test_structurally_identical_programs_share_a_plan(self):
        clear_planner_cache()
        engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
        first_session, _ = _add_program()
        second_session, _ = _add_program()
        plan_program(first_session.calls, engine)
        planned = plan_program(second_session.calls, engine)
        assert planned.report.cached

    def test_different_engines_plan_separately(self):
        clear_planner_cache()
        session, _ = _add_program()
        ddr4 = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
        three_ds = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA, memory="3DS"))
        plan_program(session.calls, ddr4)
        planned = plan_program(session.calls, three_ds)
        assert not planned.report.cached

    def test_planner_stats_surface_in_session_cache_stats(self):
        stats = PlutoSession.cache_stats()
        assert {"hits", "misses", "size"} <= set(stats["planner"])


class TestPredictionExactness:
    @pytest.mark.parametrize(
        "family", ["image", "crc", "salsa20", "vmpc", "bitcount", "vector_ops"]
    )
    def test_predicted_equals_measured_on_every_family(self, family):
        workload = workload_program(family, elements=512, seed=3)
        engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
        result = workload.session.run(workload.inputs, engine=engine, plan="auto")
        report = result.planner
        assert report is not None
        assert report.measured_makespan_ns == pytest.approx(result.latency_ns)
        # The planner prices candidates from the same trace templates the
        # execution charges, so prediction is exact — not approximate.
        assert report.prediction_error == 0.0
        assert report.chosen == result.execution_plan

    def test_report_carries_ranked_candidates(self):
        session, inputs = _add_program()
        result = session.run(inputs, plan="auto")
        report = result.planner
        assert len(report.candidates) > 1
        predicted = [c.predicted_makespan_ns for c in report.candidates]
        assert report.predicted_makespan_ns == min(predicted)
        assert report.predicted_gain >= 1.0


class TestAutoMatchesStatic:
    @pytest.mark.parametrize("backend", ["functional", "vectorized"])
    def test_outputs_bit_identical_to_static_plans(self, backend):
        elements = 128 if backend == "functional" else ELEMENTS
        session, inputs = _add_program(elements)
        session.backend = backend
        reference = session.run(inputs, plan=ExecutionPlan())
        auto = session.run(inputs, plan="auto")
        for shards in (1, 2, 4):
            static = session.run(inputs, plan=ExecutionPlan(shards=shards))
            for name in reference.outputs:
                assert np.array_equal(static.outputs[name], reference.outputs[name])
        for name in reference.outputs:
            assert np.array_equal(auto.outputs[name], reference.outputs[name])

    def test_interpreted_tier_plan_matches_compiled(self):
        session, inputs = _add_program(256)
        compiled = session.run(inputs, plan=ExecutionPlan(tier="compiled"))
        interpreted = session.run(inputs, plan=ExecutionPlan(tier="interpreted"))
        for name in compiled.outputs:
            assert np.array_equal(compiled.outputs[name], interpreted.outputs[name])
        assert compiled.latency_ns == interpreted.latency_ns

    def test_auto_never_worse_than_static_grid(self):
        session, inputs = _add_program()
        engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
        auto = session.run(inputs, engine=engine, plan="auto")
        static = [
            session.run(
                inputs,
                engine=engine,
                plan=ExecutionPlan(shards=shards, optimize=optimize),
            ).latency_ns
            for shards in (1, 2, 4, 8, 16)
            for optimize in (False, True)
        ]
        assert auto.latency_ns <= min(static) * 1.005


class TestDeprecatedShims:
    def test_run_shards_kwarg_builds_equivalent_plan(self):
        session, inputs = _add_program()
        with pytest.warns(DeprecationWarning, match="run\\(shards=\\)"):
            legacy = session.run(inputs, shards=4)
        explicit = session.run(inputs, plan=ExecutionPlan(shards=4))
        assert legacy.execution_plan == explicit.execution_plan
        assert legacy.latency_ns == explicit.latency_ns
        for name in explicit.outputs:
            assert np.array_equal(legacy.outputs[name], explicit.outputs[name])

    def test_run_optimize_kwarg_builds_equivalent_plan(self):
        session, inputs = _add_program()
        with pytest.warns(DeprecationWarning, match="optimize="):
            legacy = session.run(inputs, optimize=True)
        explicit = session.run(inputs, plan=ExecutionPlan(optimize=True))
        assert legacy.execution_plan == explicit.execution_plan
        assert legacy.latency_ns == explicit.latency_ns

    def test_run_rejects_plan_plus_legacy_kwargs(self):
        session, inputs = _add_program()
        with pytest.raises(ConfigurationError):
            session.run(inputs, plan=ExecutionPlan(shards=2), shards=4)

    def test_run_hierarchical_shims_and_plan(self):
        session, inputs = _add_program()
        with pytest.warns(DeprecationWarning):
            legacy = session.run_hierarchical(inputs, shards=8)
        explicit = session.run_hierarchical(
            inputs, plan=ExecutionPlan(hierarchical=True, shards=8)
        )
        assert legacy.num_shards == explicit.num_shards == 8
        assert legacy.latency_ns == explicit.latency_ns

    def test_run_hierarchical_coerces_plain_plans(self):
        session, inputs = _add_program()
        result = session.run_hierarchical(inputs, plan=ExecutionPlan(shards=4))
        assert result.execution_plan.hierarchical
        assert result.num_shards == 4

    def test_run_batch_optimize_shim_and_plan_restriction(self):
        session, inputs = _add_program(256)
        with pytest.warns(DeprecationWarning):
            legacy = session.run_batch([inputs], optimize=True)
        explicit = session.run_batch([inputs], plan=ExecutionPlan(optimize=True))
        assert legacy.total_latency_ns == explicit.total_latency_ns
        with pytest.raises(ConfigurationError):
            session.run_batch([inputs], plan=ExecutionPlan(shards=4))

    def test_no_warning_on_plan_only_calls(self):
        session, inputs = _add_program(256)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.run(inputs, plan=ExecutionPlan(shards=2))
            session.run(inputs, plan="auto")


class TestAutoOnEntryPoints:
    def test_run_hierarchical_auto_stays_hierarchical(self):
        session, inputs = _add_program()
        engine = PlutoEngine(PlutoConfig(channels=2, ranks=2))
        result = session.run_hierarchical(inputs, engine=engine, plan="auto")
        assert result.execution_plan.hierarchical
        assert result.planner is not None

    def test_run_batch_auto_plans_single_mode(self):
        session, inputs = _add_program(256)
        batch = session.run_batch([inputs, inputs], plan="auto")
        plan = batch.execution_plan
        assert not plan.hierarchical and plan.effective_shards == 1
        assert batch.planner is not None

    def test_service_auto_plans_per_coalesced_batch(self):
        import asyncio

        async def main():
            clear_planner_cache()
            session, inputs = _add_program(256)
            async with session.serve(
                max_queue=8, max_batch=4, plan="auto"
            ) as service:
                first = await service.submit(inputs)
                second = await service.submit(inputs)
            assert first.execution_plan == second.execution_plan
            assert not first.planner.cached
            assert second.planner.cached
            stats = planner_cache_stats()
            assert stats["misses"] == 1 and stats["hits"] >= 1

        asyncio.run(main())

    def test_every_family_auto_plans_through_run(self):
        engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
        for program in optimizer_workload_programs(elements=256, seed=0):
            reference = program.session.run(program.inputs, engine=engine)
            auto = program.session.run(program.inputs, engine=engine, plan="auto")
            for name in reference.outputs:
                assert np.array_equal(auto.outputs[name], reference.outputs[name])

"""Tests for memoized/analytic scheduling (dram/analytic.py).

The contract under test: the memoized fast merge is *bit-identical* to
the reference event-driven :meth:`CommandScheduler.merge_streams` (same
floating-point operations in the same order), and the closed-form
homogeneous Row-Sweep model matches it to machine precision (it
multiplies where the merge accumulates, so the comparison allows
last-ulp slack).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.controller.dispatch import (
    engine_helper_cache_stats,
    merged_makespan_ns,
    rank_scheduler,
    sweep_act_interval_ns,
    sweep_acts_per_row,
    sweep_tail_ns,
)
from repro.controller.hierarchy import (
    _schedule_hierarchy,
    clear_hierarchy_cache,
    hierarchy_cache_stats,
)
from repro.core.designs import PlutoDesign
from repro.core.engine import DDR4, THREE_DS, PlutoConfig, PlutoEngine
from repro.dram.analytic import (
    clear_merge_cache,
    fast_merge_makespan_ns,
    homogeneous_sweep_makespan_ns,
    merge_cache_stats,
    merge_signature,
    stream_signature,
)
from repro.dram.commands import Command, CommandType
from repro.dram.scheduler import CommandScheduler
from repro.dram.timing import DDR4_2400, HMC_3DS
from repro.errors import TimingViolationError

DESIGNS = [PlutoDesign.BSA, PlutoDesign.GSA, PlutoDesign.GMC]
MEMORIES = [DDR4, THREE_DS]


def _engine(design, memory, tfaw_fraction):
    return PlutoEngine(
        PlutoConfig(design=design, memory=memory, tfaw_fraction=tfaw_fraction)
    )


def _sweep_streams(banks, rows, *, lut_rows=0):
    """One Row-Sweep stream per bank, optionally preceded by a LUT load."""
    streams = []
    for bank in banks:
        stream = []
        if lut_rows:
            stream.append(Command(CommandType.LISA_RBM, bank=bank, rows=lut_rows))
        stream.append(Command(CommandType.ROW_SWEEP, bank=bank, rows=rows))
        streams.append(stream)
    return streams


class TestFastMergeExactness:
    """fast_merge_makespan_ns replays merge_streams bit-for-bit."""

    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("memory", MEMORIES)
    @pytest.mark.parametrize("tfaw_fraction", [0.0, 1.0])
    def test_row_sweep_streams(self, design, memory, tfaw_fraction):
        engine = _engine(design, memory, tfaw_fraction)
        streams = _sweep_streams(range(engine.geometry.banks), 24, lut_rows=24)
        reference = rank_scheduler(engine).merge_streams(streams)
        fast = fast_merge_makespan_ns(streams, rank_scheduler(engine))
        assert fast == reference  # exact, not approximate

    def test_exceeding_the_16_pending_act_window(self):
        """Streams whose activation backlog overflows the tFAW deque."""
        engine = PlutoEngine(PlutoConfig(tfaw_fraction=2.0))
        # 4 streams per bank: 64 concurrent streams of multi-row sweeps
        # keep far more than 16 activations pending at all times.
        streams = _sweep_streams(
            [bank % engine.geometry.banks for bank in range(64)], 20
        )
        reference = rank_scheduler(engine).merge_streams(streams)
        fast = fast_merge_makespan_ns(streams, rank_scheduler(engine))
        assert fast == reference

    def test_mixed_pum_commands(self):
        """TRA/SHIFT/LISA/PRE/REF mixtures match the reference exactly."""
        random.seed(3)
        engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0))
        kinds = [
            CommandType.ROW_SWEEP,
            CommandType.LISA_RBM,
            CommandType.TRA,
            CommandType.SHIFT,
            CommandType.PRE,
            CommandType.ACT,
            CommandType.REF,
        ]
        for _ in range(25):
            streams = []
            for _ in range(random.randint(1, 20)):
                bank = random.randrange(engine.geometry.banks)
                streams.append(
                    [
                        Command(
                            random.choice(kinds),
                            bank=bank,
                            rows=random.randint(1, 12),
                        )
                        for _ in range(random.randint(1, 5))
                    ]
                )
            reference = rank_scheduler(engine).merge_streams(streams)
            fast = fast_merge_makespan_ns(streams, rank_scheduler(engine))
            assert fast == reference

    def test_column_streams_fall_back(self):
        """RD/WR streams return None: the reference owns tCCD modelling."""
        engine = PlutoEngine(PlutoConfig())
        streams = [
            [Command(CommandType.ACT, bank=0), Command(CommandType.RD, bank=0)]
        ]
        assert fast_merge_makespan_ns(streams, rank_scheduler(engine)) is None
        # merged_makespan_ns still resolves them through the reference.
        direct = rank_scheduler(engine).merge_streams(streams)
        assert merged_makespan_ns(streams, engine) == direct

    def test_rejects_out_of_range_banks(self):
        engine = PlutoEngine(PlutoConfig())
        streams = [[Command(CommandType.ACT, bank=99)]]
        with pytest.raises(TimingViolationError):
            fast_merge_makespan_ns(streams, rank_scheduler(engine))


class TestMemoization:
    def test_repeat_merges_hit_the_cache(self):
        clear_merge_cache()
        engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0))
        streams = _sweep_streams(range(8), 16, lut_rows=16)
        first = merged_makespan_ns(streams, engine)
        stats = merge_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = merged_makespan_ns(streams, engine)
        assert second == first
        stats = merge_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_memoized_equals_reference_exactly(self):
        clear_merge_cache()
        for design, memory in itertools.product(DESIGNS, MEMORIES):
            engine = _engine(design, memory, 1.0)
            streams = _sweep_streams(range(engine.geometry.banks), 18, lut_rows=18)
            reference = rank_scheduler(engine).merge_streams(streams)
            assert merged_makespan_ns(streams, engine) == reference
            # ... and the warm path returns the identical float.
            assert merged_makespan_ns(streams, engine) == reference

    def test_signature_ignores_metadata_but_not_structure(self):
        scheduler = CommandScheduler(DDR4_2400)
        a = [Command(CommandType.ROW_SWEEP, bank=1, rows=4, meta="x")]
        b = [Command(CommandType.ROW_SWEEP, bank=1, rows=4, meta="y")]
        c = [Command(CommandType.ROW_SWEEP, bank=1, rows=5, meta="x")]
        assert stream_signature(a) == stream_signature(b)
        assert stream_signature(a) != stream_signature(c)
        assert merge_signature([a], scheduler) == merge_signature([b], scheduler)

    def test_distinct_timing_distinct_entries(self):
        clear_merge_cache()
        streams = _sweep_streams(range(16), 8)
        throttled = merged_makespan_ns(
            streams, PlutoEngine(PlutoConfig(tfaw_fraction=2.0))
        )
        unthrottled = merged_makespan_ns(
            streams, PlutoEngine(PlutoConfig(tfaw_fraction=0.0))
        )
        assert throttled > unthrottled
        assert merge_cache_stats()["misses"] == 2

    def test_hierarchy_schedule_memo(self):
        clear_hierarchy_cache()
        engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0, channels=2, ranks=2))
        streams = _sweep_streams([0] * 8, 16, lut_rows=16)
        cold = _schedule_hierarchy(streams, engine, channels=2, ranks=2)
        assert hierarchy_cache_stats()["misses"] == 1
        warm = _schedule_hierarchy(streams, engine, channels=2, ranks=2)
        assert hierarchy_cache_stats()["hits"] == 1
        assert warm[0] == cold[0]
        assert warm[1] == cold[1] and warm[2] == cold[2]
        # The memo hands out copies: mutating a result must not poison it.
        warm[1].clear()
        again = _schedule_hierarchy(streams, engine, channels=2, ranks=2)
        assert again[1] == cold[1]

    def test_helper_caches_report_hits(self):
        engine = PlutoEngine(PlutoConfig())
        before = engine_helper_cache_stats()["sweep_act_interval_ns"]["hits"]
        sweep_act_interval_ns(engine)
        sweep_act_interval_ns(engine)
        after = engine_helper_cache_stats()["sweep_act_interval_ns"]["hits"]
        assert after >= before + 1


class TestClosedForm:
    """The analytic model vs the event-driven merge, to machine precision."""

    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("memory", MEMORIES)
    @pytest.mark.parametrize("tfaw_fraction", [0.0, 1.0, 2.0])
    @pytest.mark.parametrize("banks_used", [1, 4, 7, 16])
    def test_matches_reference_across_designs_and_geometries(
        self, design, memory, tfaw_fraction, banks_used
    ):
        engine = _engine(design, memory, tfaw_fraction)
        gap = sweep_act_interval_ns(engine) / sweep_acts_per_row(engine)
        rows = 24
        timing = engine.timing.with_tfaw_fraction(tfaw_fraction)
        closed = homogeneous_sweep_makespan_ns(
            banks_used,
            rows * sweep_acts_per_row(engine),
            gap,
            timing,
            tail_ns=sweep_tail_ns(engine),
        )
        if closed is None:  # outside the wave model: fallback is the contract
            return
        streams = _sweep_streams(range(banks_used), rows)
        reference = rank_scheduler(engine).merge_streams(streams)
        assert closed == pytest.approx(reference, rel=1e-9, abs=1e-6)

    def test_covers_the_16_plus_pending_act_regime(self):
        """24 banks x 20-row sweeps: far beyond the 16-act tFAW deque."""
        timing = DDR4_2400.with_tfaw_fraction(2.0)
        gap = 28.32
        closed = homogeneous_sweep_makespan_ns(24, 20, gap, timing)
        assert closed is not None
        scheduler = CommandScheduler(
            timing, num_banks=24, banks_per_group=4, sweep_act_interval_ns=gap
        )
        streams = _sweep_streams(range(24), 20)
        assert closed == pytest.approx(scheduler.merge_streams(streams), rel=1e-9)

    @pytest.mark.parametrize("timing", [DDR4_2400, HMC_3DS])
    def test_grid_against_reference(self, timing):
        checked = 0
        for fraction, banks, rows, gap in itertools.product(
            [0.0, 1.0], [1, 2, 5, 9, 16], [1, 2, 33], [3.0, 14.16, 28.32]
        ):
            throttled = timing.with_tfaw_fraction(fraction)
            closed = homogeneous_sweep_makespan_ns(banks, rows, gap, throttled)
            if closed is None:
                continue
            scheduler = CommandScheduler(
                throttled, num_banks=banks, sweep_act_interval_ns=gap
            )
            reference = scheduler.merge_streams(_sweep_streams(range(banks), rows))
            assert closed == pytest.approx(reference, rel=1e-9, abs=1e-6), (
                fraction,
                banks,
                rows,
                gap,
            )
            checked += 1
        assert checked > 20  # the model must cover most of the grid

    def test_degenerate_inputs(self):
        assert homogeneous_sweep_makespan_ns(4, 0, 10.0, DDR4_2400) == 0.0
        assert homogeneous_sweep_makespan_ns(0, 4, 10.0, DDR4_2400) is None
        assert homogeneous_sweep_makespan_ns(4, 4, -1.0, DDR4_2400) is None

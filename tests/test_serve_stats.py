"""Tests for the streaming latency histograms (serve/stats.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.stats import LatencyBreakdown, LatencyHistogram


class TestLatencyHistogram:
    def test_quantiles_track_numpy_within_bucket_error(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=-6.0, sigma=1.5, size=5000)
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(float(sample))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            estimate = histogram.quantile(q)
            # log-bucketed with growth 1.07 -> a few percent of error
            assert estimate == pytest.approx(exact, rel=0.08)
        assert histogram.count == 5000
        assert histogram.mean_s == pytest.approx(float(samples.mean()))
        assert histogram.quantile(1.0) == pytest.approx(float(samples.max()))

    def test_empty_and_degenerate_histograms(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        histogram.record(0.0)  # clamps to the floor bucket
        assert histogram.count == 1
        assert histogram.quantile(0.5) >= 0.0
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.5)

    def test_merge_is_the_sum_of_the_parts(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        for value in (0.001, 0.002, 0.004):
            left.record(value)
        for value in (0.008, 0.016):
            right.record(value)
        left.merge(right)
        assert left.count == 5
        assert left.max_s == pytest.approx(0.016)
        assert left.total_s == pytest.approx(0.031)

    def test_summary_shape(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"
        }


class TestLatencyBreakdown:
    def test_observe_and_merge(self):
        first, second = LatencyBreakdown(), LatencyBreakdown()
        first.observe(queue_wait_s=0.001, execute_s=0.002)
        second.observe(
            queue_wait_s=0.003, execute_s=0.004, end_to_end_s=0.009
        )
        first.merge(second)
        summary = first.summary()
        assert summary["queue_wait"]["count"] == 2
        assert summary["execute"]["count"] == 2
        # end_to_end defaults to queue wait + execute when not given
        assert summary["end_to_end"]["count"] == 2
        assert summary["end_to_end"]["max_s"] == pytest.approx(0.009)

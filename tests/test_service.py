"""Tests for the async serving frontend (api/service.py)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import PlutoSession, PlutoService
from repro.controller.hierarchy import HierarchicalExecutionResult
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadError,
)

ELEMENTS = 512


def _add_program() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 4, "a")
    b = session.pluto_malloc(ELEMENTS, 4, "b")
    out = session.pluto_malloc(ELEMENTS, 8, "out")
    session.api_pluto_add(a, b, out, bit_width=4)
    return session


def _mul_program() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 2, "a")
    b = session.pluto_malloc(ELEMENTS, 2, "b")
    out = session.pluto_malloc(ELEMENTS, 4, "out")
    session.api_pluto_mul(a, b, out, bit_width=2)
    return session


def _add_inputs(rng: np.random.Generator) -> dict[str, np.ndarray]:
    return {
        "a": rng.integers(0, 16, ELEMENTS),
        "b": rng.integers(0, 16, ELEMENTS),
    }


class TestServing:
    def test_serves_correct_outputs_with_accounting(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(3)
            requests = [_add_inputs(rng) for _ in range(10)]
            async with session.serve(max_queue=4, max_batch=4) as service:
                results = await asyncio.gather(
                    *(service.submit(inputs) for inputs in requests)
                )
            for inputs, served in zip(requests, results):
                assert np.array_equal(
                    served.outputs["out"], inputs["a"] + inputs["b"]
                )
                assert served.latency_ns > 0
                assert served.energy_nj > 0
                assert served.queue_wait_s >= 0
                assert served.execute_s >= 0
                assert served.turnaround_s == pytest.approx(
                    served.queue_wait_s + served.execute_s
                )
                assert 1 <= served.batch_size <= 4
            assert [served.request_id for served in results] == list(range(10))
            stats = service.stats
            assert stats.served == 10
            assert stats.failed == 0
            assert stats.max_queue_depth <= 4
            assert stats.total_latency_ns == pytest.approx(
                sum(served.latency_ns for served in results)
            )

        asyncio.run(main())

    def test_coalesces_structurally_identical_requests(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(5)
            async with session.serve(max_queue=16, max_batch=8) as service:
                results = await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(8))
                )
                assert service.stats.coalesced > 0
                assert any(served.batch_size > 1 for served in results)
            assert service.stats.mean_batch_size > 1.0

        asyncio.run(main())

    def test_fused_batch_falls_back_on_individual_errors(self):
        """A poisoned request fails alone; its batch mates still serve."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(13)
            good = [_add_inputs(rng) for _ in range(3)]
            bad = {
                "a": np.full(ELEMENTS, 99, dtype=np.uint64),  # > 4 bits
                "b": rng.integers(0, 16, ELEMENTS),
            }
            async with session.serve(max_queue=16, max_batch=8) as service:
                jobs = [
                    asyncio.ensure_future(service.submit(inputs))
                    for inputs in (good[0], bad, good[1], good[2])
                ]
                results = await asyncio.gather(*jobs, return_exceptions=True)
            assert isinstance(results[1], Exception)
            for inputs, served in zip(
                (good[0], None, good[1], good[2]), results
            ):
                if inputs is not None:
                    assert np.array_equal(
                        served.outputs["out"], inputs["a"] + inputs["b"]
                    )
            assert service.stats.failed == 1
            assert service.stats.served == 3

        asyncio.run(main())

    def test_repeat_requests_report_memo_hits(self):
        """ServiceStats.cache_stats shows the memo layers warming up."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(17)
            async with session.serve(max_queue=16, max_batch=4) as service:
                await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(6))
                )
                stats = service.stats.cache_stats()
            assert stats["programs"]["size"] >= 1
            assert set(stats) >= {"scheduler_merges", "trace_templates"}

        asyncio.run(main())

    def test_mixed_programs_split_batches(self):
        async def main():
            add, mul = _add_program(), _mul_program()
            rng = np.random.default_rng(7)
            mul_inputs = {
                "a": rng.integers(0, 4, ELEMENTS),
                "b": rng.integers(0, 4, ELEMENTS),
            }
            async with add.serve(max_queue=16, max_batch=8) as service:
                jobs = []
                for index in range(6):
                    if index % 2:
                        jobs.append(service.submit(mul_inputs, session=mul))
                    else:
                        jobs.append(service.submit(_add_inputs(rng)))
                results = await asyncio.gather(*jobs)
            for index, served in enumerate(results):
                if index % 2:
                    assert np.array_equal(
                        served.outputs["out"], mul_inputs["a"] * mul_inputs["b"]
                    )
            # Alternating shapes cannot coalesce across the boundary.
            assert service.stats.batches >= 2

        asyncio.run(main())

    def test_submit_nowait_sheds_load(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(9)
            async with session.serve(max_queue=1, max_batch=1) as service:
                futures, rejected = [], 0
                for _ in range(6):
                    try:
                        futures.append(service.submit_nowait(_add_inputs(rng)))
                    except ServiceOverloadError:
                        rejected += 1
                await asyncio.gather(*futures)
                assert rejected > 0
                assert service.stats.rejected == rejected
                assert service.stats.served == len(futures)

        asyncio.run(main())

    def test_closed_service_rejects_submissions(self):
        async def main():
            session = _add_program()
            service = session.serve()
            with pytest.raises(ServiceClosedError):
                await service.submit(_add_inputs(np.random.default_rng(1)))
            async with service:
                assert service.running
            assert not service.running
            with pytest.raises(ServiceClosedError):
                await service.submit(_add_inputs(np.random.default_rng(1)))

        asyncio.run(main())

    def test_execution_errors_surface_on_the_caller(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(13)
            async with session.serve() as service:
                with pytest.raises(Exception):
                    await service.submit({"a": np.zeros(7), "b": np.zeros(7)})
                assert service.stats.failed == 1
                # The service keeps serving after a failed request.
                served = await service.submit(_add_inputs(rng))
                assert served.latency_ns > 0

        asyncio.run(main())

    def test_hierarchical_service(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(17)
            engine = PlutoEngine(
                PlutoConfig(tfaw_fraction=1.0, channels=2, ranks=2)
            )
            inputs = _add_inputs(rng)
            async with session.serve(
                engine=engine, hierarchical=True, shards=8
            ) as service:
                served = await service.submit(inputs)
            assert isinstance(served.result, HierarchicalExecutionResult)
            assert served.result.num_shards == 8
            assert np.array_equal(
                served.outputs["out"], inputs["a"] + inputs["b"]
            )
            assert served.latency_ns == served.result.makespan_ns

        asyncio.run(main())

    def test_session_override_keeps_its_backend(self):
        """A request's overriding session runs on *that* session's backend."""

        async def main():
            vectorized = _add_program()
            functional = _add_program()
            functional.backend = "functional"
            rng = np.random.default_rng(29)
            inputs = _add_inputs(rng)
            async with vectorized.serve() as service:
                fast = await service.submit(inputs)
                slow = await service.submit(inputs, session=functional)
            assert fast.backend == "vectorized"
            assert slow.backend == "functional"
            assert np.array_equal(fast.outputs["out"], slow.outputs["out"])
            assert fast.latency_ns == pytest.approx(slow.latency_ns)

        asyncio.run(main())

    def test_worker_crash_resolves_all_pending_futures(self):
        """A dead worker must not leave submitters awaiting forever."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(19)
            service = session.serve(max_queue=8, max_batch=2)
            async with service:
                def boom(batch):
                    raise RuntimeError("worker loop crashed")

                service._execute_batch = boom
                futures = [
                    service.submit_nowait(_add_inputs(rng)) for _ in range(4)
                ]
                # close() drains: every future must resolve (with the
                # crash or ServiceClosedError), never hang.
                done, pending = await asyncio.wait(futures, timeout=5.0)
                assert not pending
            for future in futures:
                with pytest.raises((RuntimeError, ServiceClosedError)):
                    future.result()
            assert service.stats.failed == 4
            assert service.stats.served == 0

        asyncio.run(main())

    def test_turnaround_covers_intra_batch_wait(self):
        """Later requests of a batch count earlier executions as queueing."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(23)
            async with session.serve(max_queue=8, max_batch=8) as service:
                results = await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(6))
                )
            coalesced = [s for s in results if s.batch_size > 1]
            assert coalesced, "expected at least one coalesced batch"
            # Within one batch, queue_wait grows with position: request
            # i waits for requests 0..i-1 of its own batch.
            by_batch: dict[float, list] = {}
            for served in results:
                by_batch.setdefault(served.batch_size, []).append(served)
            for served in results:
                assert served.queue_wait_s >= 0
                assert served.turnaround_s >= served.execute_s

        asyncio.run(main())

    def test_rejects_bad_bounds(self):
        session = _add_program()
        with pytest.raises(ConfigurationError):
            PlutoService(session, max_queue=0)
        with pytest.raises(ConfigurationError):
            PlutoService(session, max_batch=-1)

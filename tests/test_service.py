"""Tests for the async serving frontend (api/service.py)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import PlutoSession, PlutoService
from repro.controller.hierarchy import HierarchicalExecutionResult
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadError,
)

ELEMENTS = 512


def _add_program() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 4, "a")
    b = session.pluto_malloc(ELEMENTS, 4, "b")
    out = session.pluto_malloc(ELEMENTS, 8, "out")
    session.api_pluto_add(a, b, out, bit_width=4)
    return session


def _mul_program() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 2, "a")
    b = session.pluto_malloc(ELEMENTS, 2, "b")
    out = session.pluto_malloc(ELEMENTS, 4, "out")
    session.api_pluto_mul(a, b, out, bit_width=2)
    return session


def _add_inputs(rng: np.random.Generator) -> dict[str, np.ndarray]:
    return {
        "a": rng.integers(0, 16, ELEMENTS),
        "b": rng.integers(0, 16, ELEMENTS),
    }


class TestServing:
    def test_serves_correct_outputs_with_accounting(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(3)
            requests = [_add_inputs(rng) for _ in range(10)]
            async with session.serve(max_queue=4, max_batch=4) as service:
                results = await asyncio.gather(
                    *(service.submit(inputs) for inputs in requests)
                )
            for inputs, served in zip(requests, results):
                assert np.array_equal(
                    served.outputs["out"], inputs["a"] + inputs["b"]
                )
                assert served.latency_ns > 0
                assert served.energy_nj > 0
                assert served.queue_wait_s >= 0
                assert served.execute_s >= 0
                assert served.turnaround_s == pytest.approx(
                    served.queue_wait_s + served.execute_s
                )
                assert 1 <= served.batch_size <= 4
            assert [served.request_id for served in results] == list(range(10))
            stats = service.stats
            assert stats.served == 10
            assert stats.failed == 0
            assert stats.max_queue_depth <= 4
            assert stats.total_latency_ns == pytest.approx(
                sum(served.latency_ns for served in results)
            )

        asyncio.run(main())

    def test_coalesces_structurally_identical_requests(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(5)
            async with session.serve(max_queue=16, max_batch=8) as service:
                results = await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(8))
                )
                assert service.stats.coalesced > 0
                assert any(served.batch_size > 1 for served in results)
            assert service.stats.mean_batch_size > 1.0

        asyncio.run(main())

    def test_fused_batch_falls_back_on_individual_errors(self):
        """A poisoned request fails alone; its batch mates still serve."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(13)
            good = [_add_inputs(rng) for _ in range(3)]
            bad = {
                "a": np.full(ELEMENTS, 99, dtype=np.uint64),  # > 4 bits
                "b": rng.integers(0, 16, ELEMENTS),
            }
            async with session.serve(max_queue=16, max_batch=8) as service:
                jobs = [
                    asyncio.ensure_future(service.submit(inputs))
                    for inputs in (good[0], bad, good[1], good[2])
                ]
                results = await asyncio.gather(*jobs, return_exceptions=True)
            assert isinstance(results[1], Exception)
            for inputs, served in zip(
                (good[0], None, good[1], good[2]), results
            ):
                if inputs is not None:
                    assert np.array_equal(
                        served.outputs["out"], inputs["a"] + inputs["b"]
                    )
            assert service.stats.failed == 1
            assert service.stats.served == 3

        asyncio.run(main())

    def test_repeat_requests_report_memo_hits(self):
        """ServiceStats.cache_stats shows the memo layers warming up."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(17)
            async with session.serve(max_queue=16, max_batch=4) as service:
                await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(6))
                )
                stats = service.stats.cache_stats()
            assert stats["programs"]["size"] >= 1
            assert set(stats) >= {"scheduler_merges", "trace_templates"}

        asyncio.run(main())

    def test_mixed_programs_split_batches(self):
        async def main():
            add, mul = _add_program(), _mul_program()
            rng = np.random.default_rng(7)
            mul_inputs = {
                "a": rng.integers(0, 4, ELEMENTS),
                "b": rng.integers(0, 4, ELEMENTS),
            }
            async with add.serve(max_queue=16, max_batch=8) as service:
                jobs = []
                for index in range(6):
                    if index % 2:
                        jobs.append(service.submit(mul_inputs, session=mul))
                    else:
                        jobs.append(service.submit(_add_inputs(rng)))
                results = await asyncio.gather(*jobs)
            for index, served in enumerate(results):
                if index % 2:
                    assert np.array_equal(
                        served.outputs["out"], mul_inputs["a"] * mul_inputs["b"]
                    )
            # Alternating shapes cannot coalesce across the boundary.
            assert service.stats.batches >= 2

        asyncio.run(main())

    def test_submit_nowait_sheds_load(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(9)
            async with session.serve(max_queue=1, max_batch=1) as service:
                futures, rejected = [], 0
                for _ in range(6):
                    try:
                        futures.append(service.submit_nowait(_add_inputs(rng)))
                    except ServiceOverloadError:
                        rejected += 1
                await asyncio.gather(*futures)
                assert rejected > 0
                assert service.stats.rejected == rejected
                assert service.stats.served == len(futures)

        asyncio.run(main())

    def test_closed_service_rejects_submissions(self):
        async def main():
            session = _add_program()
            service = session.serve()
            with pytest.raises(ServiceClosedError):
                await service.submit(_add_inputs(np.random.default_rng(1)))
            async with service:
                assert service.running
            assert not service.running
            with pytest.raises(ServiceClosedError):
                await service.submit(_add_inputs(np.random.default_rng(1)))

        asyncio.run(main())

    def test_execution_errors_surface_on_the_caller(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(13)
            async with session.serve() as service:
                with pytest.raises(Exception):
                    await service.submit({"a": np.zeros(7), "b": np.zeros(7)})
                assert service.stats.failed == 1
                # The service keeps serving after a failed request.
                served = await service.submit(_add_inputs(rng))
                assert served.latency_ns > 0

        asyncio.run(main())

    def test_hierarchical_service(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(17)
            engine = PlutoEngine(
                PlutoConfig(tfaw_fraction=1.0, channels=2, ranks=2)
            )
            inputs = _add_inputs(rng)
            async with session.serve(
                engine=engine, hierarchical=True, shards=8
            ) as service:
                served = await service.submit(inputs)
            assert isinstance(served.result, HierarchicalExecutionResult)
            assert served.result.num_shards == 8
            assert np.array_equal(
                served.outputs["out"], inputs["a"] + inputs["b"]
            )
            assert served.latency_ns == served.result.makespan_ns

        asyncio.run(main())

    def test_session_override_keeps_its_backend(self):
        """A request's overriding session runs on *that* session's backend."""

        async def main():
            vectorized = _add_program()
            functional = _add_program()
            functional.backend = "functional"
            rng = np.random.default_rng(29)
            inputs = _add_inputs(rng)
            async with vectorized.serve() as service:
                fast = await service.submit(inputs)
                slow = await service.submit(inputs, session=functional)
            assert fast.backend == "vectorized"
            assert slow.backend == "functional"
            assert np.array_equal(fast.outputs["out"], slow.outputs["out"])
            assert fast.latency_ns == pytest.approx(slow.latency_ns)

        asyncio.run(main())

    def test_worker_crash_resolves_all_pending_futures(self):
        """A dead worker must not leave submitters awaiting forever."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(19)
            service = session.serve(max_queue=8, max_batch=2)
            async with service:
                def boom(batch):
                    raise RuntimeError("worker loop crashed")

                service._execute_batch = boom
                futures = [
                    service.submit_nowait(_add_inputs(rng)) for _ in range(4)
                ]
                # close() drains: every future must resolve (with the
                # crash or ServiceClosedError), never hang.
                done, pending = await asyncio.wait(futures, timeout=5.0)
                assert not pending
            for future in futures:
                with pytest.raises((RuntimeError, ServiceClosedError)):
                    future.result()
            assert service.stats.failed == 4
            assert service.stats.served == 0

        asyncio.run(main())

    def test_turnaround_covers_intra_batch_wait(self):
        """Later requests of a batch count earlier executions as queueing."""

        async def main():
            session = _add_program()
            rng = np.random.default_rng(23)
            async with session.serve(max_queue=8, max_batch=8) as service:
                results = await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(6))
                )
            coalesced = [s for s in results if s.batch_size > 1]
            assert coalesced, "expected at least one coalesced batch"
            # Within one batch, queue_wait grows with position: request
            # i waits for requests 0..i-1 of its own batch.
            by_batch: dict[float, list] = {}
            for served in results:
                by_batch.setdefault(served.batch_size, []).append(served)
            for served in results:
                assert served.queue_wait_s >= 0
                assert served.turnaround_s >= served.execute_s

        asyncio.run(main())

    def test_rejects_bad_bounds(self):
        session = _add_program()
        with pytest.raises(ConfigurationError):
            PlutoService(session, max_queue=0)
        with pytest.raises(ConfigurationError):
            PlutoService(session, max_batch=-1)

    def test_streaming_percentiles_cover_every_request(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(61)
            async with session.serve(max_queue=16, max_batch=4) as service:
                await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(12))
                )
            summary = service.stats.summary()
            assert summary["served"] == 12
            latency = summary["latency"]
            for name in ("queue_wait", "execute", "end_to_end"):
                quantiles = latency[name]
                assert quantiles["count"] == 12
                assert (
                    0.0
                    <= quantiles["p50_s"]
                    <= quantiles["p95_s"]
                    <= quantiles["p99_s"]
                    <= quantiles["max_s"]
                )
            assert latency["end_to_end"]["mean_s"] >= (
                latency["execute"]["mean_s"]
            )

        asyncio.run(main())

    def test_submit_many_preserves_order_and_outputs(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(67)
            requests = [_add_inputs(rng) for _ in range(6)]
            async with session.serve(max_queue=16, max_batch=4) as service:
                results = await service.submit_many(requests)
            assert [served.request_id for served in results] == list(range(6))
            for inputs, served in zip(requests, results):
                assert np.array_equal(
                    served.outputs["out"], inputs["a"] + inputs["b"]
                )

        asyncio.run(main())

    def test_submit_many_surfaces_the_first_failure(self):
        async def main():
            session = _add_program()
            rng = np.random.default_rng(71)
            bad = {"a": rng.integers(0, 16, 8)}  # wrong size, missing b
            async with session.serve(max_queue=16, max_batch=4) as service:
                with pytest.raises(Exception):
                    await service.submit_many(
                        [_add_inputs(rng), bad, _add_inputs(rng)]
                    )
                # the good batch mates still served
                assert service.stats.served == 2

        asyncio.run(main())


def _chain_program() -> PlutoSession:
    """A fusible two-query LUT chain (the optimizer halves its sweeps)."""
    from repro.api import binarize_lut, color_grade_lut

    session = PlutoSession()
    px = session.pluto_malloc(ELEMENTS, 8, "px")
    a = session.pluto_malloc(ELEMENTS, 8, "a")
    out = session.pluto_malloc(ELEMENTS, 8, "out")
    session.api_pluto_map(color_grade_lut(), px, a)
    session.api_pluto_map(binarize_lut(127), a, out)
    return session


def _chain_inputs(rng: np.random.Generator) -> dict[str, np.ndarray]:
    return {"px": rng.integers(0, 256, ELEMENTS)}


class TestOptimizedServing:
    def test_optimized_requests_serve_identical_outputs(self):
        async def main():
            session = _chain_program()
            rng = np.random.default_rng(41)
            requests = [_chain_inputs(rng) for _ in range(6)]
            async with session.serve(max_queue=16, max_batch=8) as plain_service:
                plain = await asyncio.gather(
                    *(plain_service.submit(inputs) for inputs in requests)
                )
            async with session.serve(
                max_queue=16, max_batch=8, optimize=True
            ) as service:
                optimized = await asyncio.gather(
                    *(service.submit(inputs) for inputs in requests)
                )
            for before, after in zip(plain, optimized):
                assert np.array_equal(before.outputs["out"], after.outputs["out"])
                assert after.optimization is not None
                assert after.optimization.lut_queries_saved == 1
                assert after.result.lut_queries < before.result.lut_queries
            stats = service.stats
            assert stats.optimized == 6
            assert stats.optimizer_lut_queries_saved == 6
            assert stats.optimizer_swept_rows_saved == 6 * 256

        asyncio.run(main())

    def test_optimized_requests_coalesce_on_post_optimization_key(self):
        async def main():
            session = _chain_program()
            rng = np.random.default_rng(43)
            async with session.serve(
                max_queue=16, max_batch=8, optimize=True
            ) as service:
                results = await asyncio.gather(
                    *(service.submit(_chain_inputs(rng)) for _ in range(8))
                )
                assert any(served.batch_size > 1 for served in results)
                assert service.stats.coalesced > 0

        asyncio.run(main())

    def test_optimized_and_unoptimized_do_not_cross_coalesce(self):
        """Regression: the same recording, optimized and not, never shares
        a batch — even when the optimizer leaves the program unchanged
        (identical post-optimization structure key)."""

        async def main():
            session = _add_program()  # single call: optimization is a no-op
            rng = np.random.default_rng(47)
            async with session.serve(max_queue=16, max_batch=8) as service:
                futures = [
                    service.submit_nowait(_add_inputs(rng), optimize=True)
                    for _ in range(3)
                ]
                futures += [
                    service.submit_nowait(_add_inputs(rng), optimize=False)
                    for _ in range(3)
                ]
                results = await asyncio.gather(*futures)
            for index, served in enumerate(results):
                assert served.batch_size <= 3
                assert (served.optimization is not None) == (index < 3)
            # The six consecutive requests split on the optimized flag.
            assert service.stats.batches >= 2
            assert service.stats.optimized == 3

        asyncio.run(main())

    def test_unhashable_structure_requests_run_alone(self):
        """The unified ``None`` sentinel: unhashable programs never coalesce."""

        async def main():
            session = _add_program()
            # A list-valued parameter makes the structure key unhashable.
            session.calls[0].parameters["taps"] = [1, 2, 3]
            rng = np.random.default_rng(53)
            async with session.serve(max_queue=16, max_batch=8) as service:
                results = await asyncio.gather(
                    *(service.submit(_add_inputs(rng)) for _ in range(4))
                )
            assert all(served.batch_size == 1 for served in results)
            assert service.stats.coalesced == 0
            assert service.stats.served == 4

        asyncio.run(main())

"""Tests for bank-parallel sharded execution (controller/dispatch.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import PlutoSession
from repro.controller.dispatch import (
    ParallelDispatcher,
    ShardedExecutionResult,
    ShardPlanner,
    merged_makespan_ns,
    sweep_act_interval_ns,
    sweep_acts_per_row,
    sweep_tail_ns,
)
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.scheduler import activation_count, tfaw_lower_bound_ns
from repro.errors import ConfigurationError


ELEMENTS = 4096


def _program(elements: int = ELEMENTS) -> tuple[PlutoSession, dict]:
    """The Figure 5 multiply-add (plus a bitwise tail) over many elements."""
    session = PlutoSession()
    a = session.pluto_malloc(elements, 2, "a")
    b = session.pluto_malloc(elements, 2, "b")
    c = session.pluto_malloc(elements, 4, "c")
    tmp = session.pluto_malloc(elements, 4, "tmp")
    out = session.pluto_malloc(elements, 8, "out")
    final = session.pluto_malloc(elements, 8, "final")
    session.api_pluto_mul(a, b, tmp, bit_width=2)
    session.api_pluto_add(c, tmp, out, bit_width=4)
    session.api_pluto_bitwise("xor", out, c, final)
    rng = np.random.default_rng(7)
    inputs = {
        "a": rng.integers(0, 4, elements),
        "b": rng.integers(0, 4, elements),
        "c": rng.integers(0, 16, elements),
    }
    return session, inputs


class TestShardPlanner:
    def test_balanced_contiguous_slices(self):
        session, _ = _program(10)
        plans = ShardPlanner(num_banks=16).plan(session.calls, 3)
        assert [(p.start, p.stop) for p in plans] == [(0, 4), (4, 7), (7, 10)]
        assert [p.bank for p in plans] == [0, 1, 2]
        for plan in plans:
            sizes = {
                v.size for call in plan.calls for v in (*call.inputs, call.output)
            }
            assert sizes == {plan.size}

    def test_rejects_more_shards_than_banks(self):
        session, _ = _program(64)
        with pytest.raises(ConfigurationError):
            ShardPlanner(num_banks=4).plan(session.calls, 8)

    def test_rejects_more_shards_than_elements(self):
        session, _ = _program(2)
        with pytest.raises(ConfigurationError):
            ShardPlanner(num_banks=16).plan(session.calls, 3)

    def test_rejects_empty_program(self):
        with pytest.raises(ConfigurationError):
            ShardPlanner().plan([], 2)

    def test_rejects_non_uniform_sizes(self):
        first = PlutoSession()
        a = first.pluto_malloc(8, 4, "a")
        b = first.pluto_malloc(8, 4, "b")
        out = first.pluto_malloc(8, 8, "out")
        first.api_pluto_add(a, b, out, bit_width=4)
        second = PlutoSession()
        c = second.pluto_malloc(16, 4, "c")
        d = second.pluto_malloc(16, 4, "d")
        out2 = second.pluto_malloc(16, 8, "out2")
        second.api_pluto_add(c, d, out2, bit_width=4)
        with pytest.raises(ConfigurationError):
            ShardPlanner().plan(first.calls + second.calls, 2)


class TestDifferential:
    """The PR's acceptance criteria: bit-identical outputs, honest timing."""

    @pytest.mark.parametrize("backend", ["vectorized", "functional"])
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_sharded_matches_unsharded(self, backend, shards):
        session, inputs = _program()
        session.backend = backend
        engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0))
        reference = session.run(inputs, engine=engine)
        result = ParallelDispatcher(engine, backend=backend).execute(
            session.calls, inputs, shards=shards
        )
        assert isinstance(result, ShardedExecutionResult)
        assert result.num_shards == shards
        for name, data in reference.outputs.items():
            assert np.array_equal(result.outputs[name], data), name

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_makespan_between_bounds(self, shards):
        session, inputs = _program()
        engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0))
        result = ParallelDispatcher(engine).execute(
            session.calls, inputs, shards=shards
        )
        # Strictly faster than draining every shard through one bank ...
        assert result.makespan_ns < result.serial_latency_ns
        # ... but never below the rank's tFAW activation floor.
        timing = engine.timing.with_tfaw_fraction(engine.config.tfaw_fraction)
        activations = sum(
            activation_count(command) for command in result.trace.commands
        )
        assert result.makespan_ns >= tfaw_lower_bound_ns(activations, timing)

    def test_single_shard_makespan_matches_serial(self, any_design):
        session, inputs = _program()
        engine = PlutoEngine(
            PlutoConfig(design=any_design, tfaw_fraction=1.0)
        )
        result = ParallelDispatcher(engine).execute(session.calls, inputs, shards=1)
        assert result.makespan_ns == pytest.approx(
            result.serial_latency_ns, rel=1e-6
        )
        assert result.latency_ns == result.makespan_ns

    def test_rejects_mis_sized_and_unknown_inputs(self):
        """Sharded runs must reject what unsharded runs reject, not slice."""
        from repro.errors import ExecutionError

        session, inputs = _program(16)
        dispatcher = ParallelDispatcher()
        oversized = dict(inputs, a=np.zeros(32, dtype=np.uint64))
        with pytest.raises(ExecutionError):
            dispatcher.execute(session.calls, oversized, shards=2)
        unknown = dict(inputs, ghost=np.zeros(16, dtype=np.uint64))
        with pytest.raises(ExecutionError):
            dispatcher.execute(session.calls, unknown, shards=2)

    def test_makespan_improves_with_shards(self):
        # 32768 elements: the add's merged 8-bit index register spans four
        # DRAM rows, so each doubling of the shard count halves the rows
        # (and sweeps) per bank until every shard is down to one row.
        session, inputs = _program(32768)
        engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0))
        dispatcher = ParallelDispatcher(engine)
        makespans = [
            dispatcher.execute(session.calls, inputs, shards=n).makespan_ns
            for n in (1, 2, 4)
        ]
        assert makespans[0] > makespans[1] > makespans[2]


class TestSessionSurface:
    def test_run_with_shards(self):
        session, inputs = _program()
        reference = session.run(inputs)
        sharded = session.run(inputs, shards=4)
        assert isinstance(sharded, ShardedExecutionResult)
        assert np.array_equal(sharded.outputs["final"], reference.outputs["final"])
        assert sharded.parallel_speedup > 1.0
        with pytest.raises(ConfigurationError):
            session.run(inputs, shards=0)

    def test_run_batch_parallel_makespan(self):
        session, inputs = _program(1024)
        batch = [inputs, inputs, inputs, inputs]
        serial = session.run_batch(batch)
        parallel = session.run_batch(batch, parallel=True)
        # Serial batches keep sum semantics; parallel batches report the
        # scheduler-derived makespan and keep the sum on serial_latency_ns.
        assert serial.makespan_ns is None
        assert serial.total_latency_ns == serial.serial_latency_ns
        assert parallel.makespan_ns is not None
        assert parallel.total_latency_ns < parallel.serial_latency_ns
        assert parallel.serial_latency_ns == pytest.approx(
            serial.serial_latency_ns
        )
        for one, other in zip(serial, parallel):
            assert np.array_equal(one.outputs["final"], other.outputs["final"])

    def test_run_rejects_more_shards_than_banks(self):
        """The session surface, not just the planner, explains the limit."""
        session, inputs = _program(64)
        with pytest.raises(ConfigurationError, match="16 banks"):
            session.run(inputs, shards=17)

    def test_run_batch_parallel_warns_when_oversubscribed(self):
        """More jobs than banks clamps round-robin with a warning.

        Jobs beyond the module's bank count wrap onto already-used banks
        and serialise there; the results stay correct and the makespan
        reflects the serialisation, but callers expecting one bank per
        job are told.
        """
        session, inputs = _program(64)
        batch = [inputs] * 18  # 18 jobs > 16 banks
        with pytest.warns(UserWarning, match="16 banks"):
            oversubscribed = session.run_batch(batch, parallel=True)
        assert len(oversubscribed) == 18
        reference = session.run(inputs)
        for result in oversubscribed:
            assert np.array_equal(
                result.outputs["final"], reference.outputs["final"]
            )
        # Still a true makespan: bounded by the serial drain of all jobs.
        assert oversubscribed.makespan_ns is not None
        assert oversubscribed.makespan_ns < oversubscribed.serial_latency_ns
        # A bank-count-sized batch stays warning-free.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session.run_batch([inputs] * 4, parallel=True)

    def test_harness_sharded_execution(self):
        from repro.evaluation.harness import EvaluationHarness

        session, inputs = _program(1024)
        harness = EvaluationHarness()
        plain = harness.execute_program(session, inputs)
        sharded = harness.execute_program(session, inputs, shards=4)
        assert set(sharded) == set(plain)
        for label, result in sharded.items():
            assert isinstance(result, ShardedExecutionResult)
            assert np.array_equal(
                result.outputs["final"], plain[label].outputs["final"]
            ), label


class TestSweepInterval:
    def test_design_specific_spacing(self):
        bsa = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
        gsa = PlutoEngine(PlutoConfig(design=PlutoDesign.GSA))
        gmc = PlutoEngine(PlutoConfig(design=PlutoDesign.GMC))
        timing = bsa.timing
        assert sweep_act_interval_ns(bsa) == pytest.approx(
            timing.t_rcd + timing.t_rp
        )
        assert sweep_act_interval_ns(gmc) == pytest.approx(timing.t_rcd)
        assert sweep_act_interval_ns(gsa) > sweep_act_interval_ns(bsa)
        assert sweep_acts_per_row(gsa) == 2
        assert sweep_acts_per_row(bsa) == sweep_acts_per_row(gmc) == 1

    @pytest.mark.parametrize("rows", [16, 256])
    def test_sweep_decomposition_matches_cost_model(self, any_design, rows):
        """interval x rows + tail must equal Table 1's query latency.

        The dispatcher re-encodes the per-design sweep decomposition that
        PlutoCostModel expresses in closed form; this pins the two
        encodings together so the single-shard makespan stays equal to
        the serial trace latency for every design.
        """
        engine = PlutoEngine(PlutoConfig(design=any_design))
        reconstructed = rows * sweep_act_interval_ns(engine) + sweep_tail_ns(
            engine
        )
        assert reconstructed == pytest.approx(
            engine.cost_model.query_latency_ns(any_design, rows)
        )

    def test_gsa_sweeps_count_reload_activations(self):
        """GSA's destructive-read reloads double the tFAW pressure."""
        from repro.dram.commands import Command, CommandType
        from repro.dram.scheduler import CommandScheduler
        from repro.dram.timing import TimingParameters

        timing = TimingParameters(t_faw=1000.0, t_rrd=0.0)
        streams = [[Command(CommandType.ROW_SWEEP, bank=0, rows=4)]]
        single = CommandScheduler(
            timing, sweep_act_interval_ns=10.0, sweep_acts_per_row=1
        )
        double = CommandScheduler(
            timing, sweep_act_interval_ns=10.0, sweep_acts_per_row=2
        )
        # Four rows = four activations: inside the window.  Eight
        # activations (reload + sweep per row) must trip tFAW.
        assert single.merge_streams(streams) == pytest.approx(40.0)
        assert double.merge_streams(streams) >= 1000.0

    def test_merge_streams_requires_fresh_scheduler(self):
        from repro.dram.commands import Command, CommandType
        from repro.dram.scheduler import CommandScheduler
        from repro.dram.timing import DDR4_2400
        from repro.errors import TimingViolationError

        scheduler = CommandScheduler(DDR4_2400)
        scheduler.issue(Command(CommandType.ACT, bank=0))
        with pytest.raises(TimingViolationError):
            scheduler.merge_streams([[Command(CommandType.ACT, bank=1)]])

    def test_empty_streams_have_zero_makespan(self):
        engine = PlutoEngine(PlutoConfig())
        assert merged_makespan_ns([], engine) == 0.0
        assert merged_makespan_ns([[]], engine) == 0.0

"""Tests for the persistent warm-artifact store (serve/store.py)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import PlutoSession
from repro.api.session import cache_stats, clear_all_caches
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.serve.store import (
    ARTIFACT_SCHEMA_VERSION,
    SharedArtifactStore,
    collect_artifacts,
    install_artifacts,
)
from repro.workloads.programs import workload_program

ELEMENTS = 256

#: The pipeline stages warm start must fully pre-pay: a warm-started
#: process serving a stored structure takes zero cold misses on any of
#: them (``scheduler_merges`` is exempt — the analytic merge is
#: recomputed per realized stream and costs microseconds).
WARM_LAYERS = (
    "optimizer",
    "planner",
    "verifier",
    "trace_templates",
    "compiled_exec",
)


def _program() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 4, "a")
    b = session.pluto_malloc(ELEMENTS, 4, "b")
    out = session.pluto_malloc(ELEMENTS, 8, "out")
    session.api_pluto_add(a, b, out, bit_width=4)
    return session


class TestStoreRoundtrip:
    def test_export_load_roundtrip(self, tmp_path):
        session = _program()
        store = SharedArtifactStore(tmp_path / "store")
        artifacts = store.export(session.calls)
        assert len(store) == 1
        loaded = SharedArtifactStore(tmp_path / "store").load(
            artifacts.identity
        )
        assert loaded is not None
        assert loaded.identity == artifacts.identity
        assert loaded.structure_key == artifacts.structure_key
        assert loaded.compiled is not None

    def test_missing_entry_counts_a_miss(self, tmp_path):
        session = _program()
        store = SharedArtifactStore(tmp_path / "store")
        artifacts = collect_artifacts(session.calls)
        before = cache_stats()["shared_store"]["misses"]
        assert store.load(artifacts.identity) is None
        assert cache_stats()["shared_store"]["misses"] == before + 1

    def test_export_overwrites_same_key(self, tmp_path):
        session = _program()
        store = SharedArtifactStore(tmp_path / "store")
        store.export(session.calls)
        store.export(session.calls)
        assert len(store) == 1


class TestVersionedInvalidation:
    def test_schema_mismatch_is_stale_and_removed(self, tmp_path):
        session = _program()
        store = SharedArtifactStore(tmp_path / "store")
        artifacts = store.export(session.calls)
        stale = dataclasses.replace(
            artifacts, schema=ARTIFACT_SCHEMA_VERSION + 1
        )
        path = store.save(stale)
        store._entry_path(artifacts.identity).unlink()  # keep only stale
        before = cache_stats()["shared_store"]["stale"]
        report = store.warm_start()
        assert report.installed == 0
        assert cache_stats()["shared_store"]["stale"] == before + 1
        assert not path.exists()  # invalid entries are evicted on read

    def test_corrupt_entry_is_stale_and_removed(self, tmp_path):
        session = _program()
        store = SharedArtifactStore(tmp_path / "store")
        artifacts = store.export(session.calls)
        path = store._entry_path(artifacts.identity)
        path.write_bytes(b"not a pickle")
        report = store.warm_start()
        assert report.installed == 0
        assert not path.exists()

    def test_config_mismatch_never_installs(self, tmp_path):
        session = _program()
        store = SharedArtifactStore(tmp_path / "store")
        store.export(session.calls)  # under the default configuration
        other = PlutoEngine(PlutoConfig(channels=2, ranks=2))
        report = store.warm_start(other)
        assert report.entries == 1
        assert report.installed == 0
        assert report.stale == 1

    def test_install_rejects_foreign_config(self, tmp_path):
        session = _program()
        artifacts = collect_artifacts(session.calls)
        other = PlutoEngine(PlutoConfig(channels=2, ranks=2))
        assert install_artifacts(artifacts, other) is False


class TestWarmStart:
    def test_cleared_caches_serve_with_zero_cold_misses(self, tmp_path):
        """The headline property: a warm-started process runs the fully
        warm path on its first request — zero optimizer / planner /
        verifier / template / compile misses, bit-identical outputs."""
        program = workload_program("crc", elements=ELEMENTS, seed=1)
        store = SharedArtifactStore(tmp_path / "store")
        store.export(
            program.session.calls,
            supports_batched=True,
        )
        cold = program.session.run(program.inputs)

        clear_all_caches()
        report = store.warm_start()
        assert report.installed == 1
        before = cache_stats()

        warm = program.session.run(program.inputs)
        after = cache_stats()

        for layer in WARM_LAYERS:
            misses = after[layer]["misses"] - before[layer]["misses"]
            assert misses == 0, f"{layer} took {misses} cold miss(es)"
        # No program was compiled after warm start either.
        assert after["programs"]["size"] == before["programs"]["size"]
        for name, array in cold.outputs.items():
            assert np.array_equal(array, warm.outputs[name])

    def test_warm_start_installs_every_family(self, tmp_path):
        store = SharedArtifactStore(tmp_path / "store")
        for name in ("crc", "image", "bitcount"):
            program = workload_program(name, elements=ELEMENTS, seed=2)
            store.export(program.session.calls)
        clear_all_caches()
        report = store.warm_start()
        assert report.entries == 3
        assert report.installed == 3
        assert report.load_time_s > 0.0
        stats = cache_stats()["shared_store"]
        assert stats["installed"] >= 3

    def test_clear_empties_the_store(self, tmp_path):
        session = _program()
        store = SharedArtifactStore(tmp_path / "store")
        store.export(session.calls)
        store.clear()
        assert len(store) == 0
        assert store.warm_start().entries == 0

    def test_cache_stats_exposes_the_shared_store_layer(self):
        stats = cache_stats()["shared_store"]
        for key in (
            "hits", "misses", "stale", "saved", "installed", "load_time_s"
        ):
            assert key in stats


class TestFreshProcessWarmStart:
    def test_spawned_pool_serves_store_programs_without_compiling(
        self, tmp_path
    ):
        """A genuinely cold process (spawn start method) warm-starts from
        the store and serves bit-identical outputs, with every warm layer
        hitting instead of missing."""
        from repro.serve import PlutoWorkerPool

        program = workload_program("crc", elements=ELEMENTS, seed=3)
        store = SharedArtifactStore(tmp_path / "store")
        store.export(program.session.calls)
        reference = program.session.run(program.inputs)

        import zlib

        expected = {
            name: zlib.crc32(np.asarray(array).tobytes())
            for name, array in reference.outputs.items()
        }
        with PlutoWorkerPool(
            workers=1,
            store_path=str(tmp_path / "store"),
            start_method="spawn",
        ) as pool:
            assert pool.wait_ready(120.0)
            assert pool.warm_reports[0]["installed"] == 1
            result = pool.submit(
                program.session, program.inputs, return_outputs=False
            ).result(120.0)
        assert result.digests == expected
        caches = pool.worker_reports[0]["cache_stats"]
        for layer in WARM_LAYERS:
            stats = caches[layer]
            assert stats["misses"] == 0, (
                f"fresh process took {stats['misses']} cold "
                f"{layer} miss(es)"
            )

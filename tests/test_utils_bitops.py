"""Tests for bit-manipulation utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.bitops import (
    bit_length_for,
    bits_required,
    extract_field,
    insert_field,
    interleave_operands,
    mask_of,
    pack_elements,
    split_interleaved,
    unpack_elements,
)


class TestMaskOf:
    def test_zero_bits(self):
        assert mask_of(0) == 0

    def test_small_masks(self):
        assert mask_of(1) == 1
        assert mask_of(4) == 0xF
        assert mask_of(8) == 0xFF

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            mask_of(-1)


class TestBitsRequired:
    def test_zero_needs_one_bit(self):
        assert bits_required(0) == 1

    def test_powers_of_two(self):
        assert bits_required(1) == 1
        assert bits_required(255) == 8
        assert bits_required(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_required(-5)


class TestBitLengthFor:
    def test_single_entry_lut(self):
        assert bit_length_for(1) == 1

    def test_power_of_two_luts(self):
        assert bit_length_for(2) == 1
        assert bit_length_for(16) == 4
        assert bit_length_for(256) == 8

    def test_non_power_of_two_rounds_up(self):
        assert bit_length_for(200) == 8
        assert bit_length_for(257) == 9

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_length_for(0)


class TestFields:
    def test_extract_field(self):
        assert extract_field(0xABCD, 4, 8) == 0xBC

    def test_insert_field(self):
        assert insert_field(0x0000, 0xF, 4, 4) == 0x00F0

    def test_insert_then_extract_roundtrip(self):
        value = insert_field(0x1234, 0x7, 8, 3)
        assert extract_field(value, 8, 3) == 0x7

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            extract_field(1, -1, 4)


class TestPacking:
    def test_roundtrip_4bit(self):
        values = np.array([1, 2, 3, 15, 0, 7], dtype=np.uint64)
        row = pack_elements(values, 4, 8)
        assert row.shape == (8,)
        recovered = unpack_elements(row, 4, values.size)
        assert np.array_equal(recovered, values)

    def test_roundtrip_non_byte_aligned_width(self):
        values = np.array([5, 2, 7, 1, 0, 6, 3], dtype=np.uint64)
        row = pack_elements(values, 3, 4)
        recovered = unpack_elements(row, 3, values.size)
        assert np.array_equal(recovered, values)

    def test_overflowing_element_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_elements(np.array([16], dtype=np.uint64), 4, 8)

    def test_too_many_elements_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_elements(np.arange(100, dtype=np.uint64) % 2, 1, 4)

    def test_unpack_too_many_rejected(self):
        row = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            unpack_elements(row, 8, 5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32),
    )
    def test_roundtrip_property_8bit(self, values):
        array = np.array(values, dtype=np.uint64)
        row = pack_elements(array, 8, 64)
        assert np.array_equal(unpack_elements(row, 8, array.size), array)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.data(),
    )
    def test_roundtrip_property_any_width(self, bits, data):
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=mask_of(bits)),
                min_size=1,
                max_size=16,
            )
        )
        array = np.array(values, dtype=np.uint64)
        row = pack_elements(array, bits, 32)
        assert np.array_equal(unpack_elements(row, bits, array.size), array)


class TestInterleaving:
    def test_interleave_and_split(self):
        left = np.array([1, 2, 3], dtype=np.uint64)
        right = np.array([4, 5, 6], dtype=np.uint64)
        combined = interleave_operands(left, right, 4, 4)
        assert combined.tolist() == [0x14, 0x25, 0x36]
        back_left, back_right = split_interleaved(combined, 4, 4)
        assert np.array_equal(back_left, left)
        assert np.array_equal(back_right, right)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            interleave_operands(np.array([1]), np.array([1, 2]), 4, 4)

    def test_out_of_range_operand_rejected(self):
        with pytest.raises(ConfigurationError):
            interleave_operands(np.array([16]), np.array([0]), 4, 4)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=16),
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=16),
    )
    def test_split_inverts_interleave(self, left_values, right_values):
        size = min(len(left_values), len(right_values))
        left = np.array(left_values[:size], dtype=np.uint64)
        right = np.array(right_values[:size], dtype=np.uint64)
        combined = interleave_operands(left, right, 4, 4)
        back_left, back_right = split_interleaved(combined, 4, 4)
        assert np.array_equal(back_left, left)
        assert np.array_equal(back_right, right)

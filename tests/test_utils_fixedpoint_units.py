"""Tests for Q-format fixed point helpers and unit utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.fixedpoint import Q1_7, Q1_15, QFormat, from_fixed, to_fixed
from repro.utils.units import format_energy, format_time, geometric_mean


class TestQFormat:
    def test_q1_7_properties(self):
        assert Q1_7.total_bits == 8
        assert Q1_7.scale == 128
        assert Q1_7.min_value == -1.0
        assert Q1_7.max_value == pytest.approx(1.0 - 1 / 128)

    def test_q1_15_properties(self):
        assert Q1_15.total_bits == 16
        assert Q1_15.scale == 32768

    def test_invalid_formats_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(integer_bits=0, fractional_bits=7)
        with pytest.raises(ConfigurationError):
            QFormat(integer_bits=1, fractional_bits=-1)

    def test_roundtrip_exact_values(self):
        values = np.array([0.0, 0.5, -0.5, 0.25, -1.0])
        raw = to_fixed(values, Q1_7)
        assert np.allclose(from_fixed(raw, Q1_7), values)

    def test_clipping_at_range_edges(self):
        raw = to_fixed(np.array([5.0, -5.0]), Q1_7)
        decoded = from_fixed(raw, Q1_7)
        assert decoded[0] == pytest.approx(Q1_7.max_value)
        assert decoded[1] == pytest.approx(Q1_7.min_value)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-0.999, max_value=0.99, allow_nan=False))
    def test_quantization_error_bounded(self, value):
        raw = to_fixed(np.array([value]), Q1_15)
        decoded = from_fixed(raw, Q1_15)[0]
        assert abs(decoded - value) <= 1.0 / Q1_15.scale


class TestUnits:
    def test_format_time_scales(self):
        assert format_time(1.5) == "1.50 ns"
        assert format_time(1500.0) == "1.50 us"
        assert format_time(2.5e6) == "2.50 ms"
        assert format_time(3.2e9).endswith(" s")

    def test_format_energy_scales(self):
        assert format_energy(0.5) == "0.50 nJ"
        assert format_energy(2.5e3) == "2.50 uJ"
        assert format_energy(7.5e6) == "7.50 mJ"

    def test_negative_values_render_with_sign(self):
        assert format_time(-10).startswith("-")
        assert format_energy(-10).startswith("-")

    def test_geometric_mean_simple(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([7]) == pytest.approx(7.0)

    def test_geometric_mean_rejects_invalid(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20))
    def test_geometric_mean_between_min_and_max(self, values):
        result = geometric_mean(values)
        assert min(values) <= result * (1 + 1e-9)
        assert result <= max(values) * (1 + 1e-9)

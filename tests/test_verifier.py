"""Tests for the static verifier (analyze/): corpus + front doors + fuzz.

The malformed-program corpus constructs ApiCall / CompiledProgram values
directly — bypassing the session's record-time checks on purpose — and
asserts the exact diagnostic codes the verifier reports for each defect
class.  The fuzz test mutates valid optimizer-output programs from the
workload registry and checks every mutation is caught.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import replace

import numpy as np
import pytest

from repro.analyze import (
    Diagnostic,
    Severity,
    analyze_dataflow,
    check_pass_invariants,
    narrow_output_diagnostic,
    operand_width_diagnostic,
    shards_overcommit_diagnostic,
    verification_enabled,
    verify_calls,
    verify_cached,
    verify_compiled,
    verify_program,
    verify_shard_plans,
)
from repro.analyze.cli import main as analyze_main
from repro.analyze.verifier import clear_verifier_cache, verifier_cache_stats
from repro.api.handles import ApiCall, PlutoVector
from repro.api.session import PlutoSession
from repro.compiler.lowering import CompiledProgram, program_structure_key
from repro.controller.dispatch import ShardPlan
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.core.lut import LookupTable
from repro.errors import ConfigurationError, VerificationError
from repro.isa.instructions import (
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
)
from repro.isa.program import PlutoProgram
from repro.isa.registers import RegisterFile, RowRegister, SubarrayRegister
from repro.opt.pipeline import PassManager, optimize_program
from repro.workloads.programs import workload_program

ELEMENTS = 64


def _lut(index_bits: int = 8, element_bits: int = 8, name: str = "t") -> LookupTable:
    entries = 1 << index_bits
    return LookupTable(
        values=tuple(x % (1 << element_bits) for x in range(entries)),
        index_bits=index_bits,
        element_bits=element_bits,
        name=name,
    )


def _vec(name: str, bit_width: int = 8, size: int = ELEMENTS) -> PlutoVector:
    return PlutoVector(name=name, size=size, bit_width=bit_width)


def _map_call(
    source: PlutoVector, out: PlutoVector, lut: LookupTable
) -> ApiCall:
    return ApiCall(operation="map", inputs=(source,), output=out, lut=lut)


def _valid_calls() -> list[ApiCall]:
    a = _vec("a")
    mid = _vec("mid")
    out = _vec("out")
    lut = _lut()
    return [_map_call(a, mid, lut), _map_call(mid, out, lut)]


class _Compiled:
    """A small, valid hand-built compiled program, easy to perturb."""

    def __init__(self) -> None:
        self.r0 = RowRegister(0, ELEMENTS, 8)
        self.r1 = RowRegister(1, ELEMENTS, 8)
        self.s0 = SubarrayRegister(0, 256, "t")
        self.table = _lut()
        self.instructions = [
            PlutoRowAlloc(self.r0, ELEMENTS, 8),
            PlutoRowAlloc(self.r1, ELEMENTS, 8),
            PlutoSubarrayAlloc(self.s0, 256, "t"),
            PlutoOp(self.r1, self.r0, self.s0, 256, 8),
        ]
        self.vector_bindings = {"a": self.r0, "out": self.r1}
        self.lut_bindings = {0: self.table}
        self.external_inputs = [_vec("a")]
        self.outputs = [_vec("out")]

    def build(self) -> CompiledProgram:
        return CompiledProgram(
            program=PlutoProgram(list(self.instructions)),
            register_file=RegisterFile(),
            vector_bindings=dict(self.vector_bindings),
            lut_bindings=dict(self.lut_bindings),
            external_inputs=list(self.external_inputs),
            outputs=list(self.outputs),
        )


class TestCallVerification:
    """API-level corpus: verify_calls catches each defect class."""

    def test_valid_program_is_clean(self):
        report = verify_calls(_valid_calls())
        assert report.clean
        assert report.ok

    def test_empty_program(self):
        report = verify_calls([])
        assert report.codes() == {"empty-program"}
        assert not report.ok

    def test_unknown_operation(self):
        call = ApiCall(
            operation="frobnicate", inputs=(_vec("a"),), output=_vec("out")
        )
        report = verify_calls([call])
        assert "unknown-operation" in report.codes()
        (finding,) = [d for d in report if d.code == "unknown-operation"]
        assert finding.instruction == 0
        assert "frobnicate" in finding.message

    def test_multiple_assignment(self):
        calls = _valid_calls()
        calls.append(calls[0])  # 'mid' produced twice
        report = verify_calls(calls)
        assert "multiple-assignment" in report.codes()
        (finding,) = [d for d in report if d.code == "multiple-assignment"]
        assert finding.instruction == 2
        assert "'mid'" in finding.message

    def test_missing_lut(self):
        call = ApiCall(operation="map", inputs=(_vec("a"),), output=_vec("out"))
        report = verify_calls([call])
        assert "missing-lut" in report.codes()

    def test_arity(self):
        call = ApiCall(
            operation="map",
            inputs=(_vec("a"), _vec("b")),
            output=_vec("out"),
            lut=_lut(),
        )
        report = verify_calls([call])
        assert "arity" in report.codes()

    def test_out_of_range_lut_index(self):
        # 4-bit source cannot address a 256-entry table.
        call = _map_call(_vec("a", bit_width=4), _vec("out"), _lut(index_bits=8))
        report = verify_calls([call])
        assert "lut-index-width" in report.codes()
        (finding,) = [d for d in report if d.code == "lut-index-width"]
        assert "256-entry" in finding.message

    def test_width_overflow_narrow_output(self):
        # The LUT produces 8-bit values; a 4-bit output would truncate.
        call = _map_call(_vec("a"), _vec("out", bit_width=4), _lut())
        report = verify_calls([call])
        assert "narrow-output" in report.codes()
        (finding,) = [d for d in report if d.code == "narrow-output"]
        assert "8-bit elements" in finding.message
        assert "widen" in finding.hint

    def test_operand_width(self):
        call = ApiCall(
            operation="add",
            inputs=(_vec("a", bit_width=2), _vec("b", bit_width=4)),
            output=_vec("out"),
            lut=_lut(),
            parameters={"bit_width": 4},
        )
        report = verify_calls([call])
        assert "operand-width" in report.codes()

    def test_shift_direction_and_amount(self):
        bad_direction = ApiCall(
            operation="shift",
            inputs=(_vec("a"),),
            output=_vec("out"),
            parameters={"direction": "up", "bits": 1},
        )
        bad_amount = ApiCall(
            operation="shift",
            inputs=(_vec("a2"),),
            output=_vec("out2"),
            parameters={"direction": "l", "bits": -3},
        )
        report = verify_calls([bad_direction, bad_amount])
        assert {"shift-direction", "shift-amount"} <= report.codes()

    def test_dependency_cycle(self):
        a, b = _vec("a"), _vec("b")
        lut = _lut()
        calls = [_map_call(a, b, lut), _map_call(b, a, lut)]
        report = verify_calls(calls)
        assert "dependency-cycle" in report.codes()


class TestCompiledVerification:
    """ISA-level corpus: verify_compiled catches each defect class."""

    def test_valid_compiled_is_clean(self):
        assert verify_compiled(_Compiled().build()).clean

    def test_use_before_def(self):
        broken = _Compiled()
        del broken.instructions[0]  # r0 never allocated
        report = verify_compiled(broken.build())
        assert "use-before-def" in report.codes()
        (finding,) = [d for d in report if d.code == "use-before-def"]
        assert "used before allocation" in finding.message
        assert finding.severity is Severity.ERROR

    def test_register_overcommit(self):
        broken = _Compiled()
        spill = RowRegister(64, ELEMENTS, 8)  # register file holds 64 (0..63)
        broken.instructions.insert(0, PlutoRowAlloc(spill, ELEMENTS, 8))
        report = verify_compiled(broken.build())
        assert "register-overcommit" in report.codes()
        (finding,) = [d for d in report if d.code == "register-overcommit"]
        assert "64 row registers" in finding.message

    def test_duplicate_alloc(self):
        broken = _Compiled()
        broken.instructions.insert(1, broken.instructions[0])
        report = verify_compiled(broken.build())
        assert "duplicate-alloc" in report.codes()

    def test_unbound_lut(self):
        broken = _Compiled()
        broken.lut_bindings = {}
        report = verify_compiled(broken.build())
        assert "unbound-lut" in report.codes()

    def test_lut_size_mismatch(self):
        broken = _Compiled()
        broken.lut_bindings = {0: _lut(index_bits=7)}  # 128 entries vs 256 rows
        report = verify_compiled(broken.build())
        assert "lut-size-mismatch" in report.codes()

    def test_narrow_output_at_isa_level(self):
        broken = _Compiled()
        narrow = RowRegister(1, ELEMENTS, 4)
        broken.r1 = narrow
        broken.instructions[1] = PlutoRowAlloc(narrow, ELEMENTS, 4)
        broken.instructions[3] = PlutoOp(narrow, broken.r0, broken.s0, 256, 8)
        broken.vector_bindings["out"] = narrow
        broken.outputs = [_vec("out", bit_width=4)]
        report = verify_compiled(broken.build())
        assert "narrow-output" in report.codes()

    def test_lut_index_range_warning(self):
        # 8-bit source (provable bound 255) into a 128-entry table: legal,
        # but the backends must guard — the verifier flags it as a warning.
        broken = _Compiled()
        small = _lut(index_bits=7)
        broken.s0 = SubarrayRegister(0, 128, small.name)
        broken.instructions[2] = PlutoSubarrayAlloc(broken.s0, 128, small.name)
        broken.instructions[3] = PlutoOp(broken.r1, broken.r0, broken.s0, 128, 8)
        broken.lut_bindings = {0: small}
        report = verify_compiled(broken.build())
        assert report.ok  # warning, not error
        assert "lut-index-range" in report.codes()
        (finding,) = report.warnings
        assert finding.severity is Severity.WARNING

    def test_move_self_copy(self):
        broken = _Compiled()
        broken.instructions.append(PlutoMove(broken.r0, broken.r0))
        report = verify_compiled(broken.build())
        assert "move-self-copy" in report.codes()

    def test_move_shrink(self):
        broken = _Compiled()
        small = RowRegister(2, ELEMENTS // 2, 8)
        broken.instructions.append(PlutoRowAlloc(small, ELEMENTS // 2, 8))
        broken.instructions.append(PlutoMove(small, broken.r0))
        report = verify_compiled(broken.build())
        assert "move-shrink" in report.codes()

    def test_unbound_vector(self):
        broken = _Compiled()
        broken.outputs.append(_vec("ghost"))
        report = verify_compiled(broken.build())
        assert "unbound-vector" in report.codes()

    def test_binding_mismatch(self):
        broken = _Compiled()
        broken.outputs = [_vec("out", size=ELEMENTS // 2)]
        report = verify_compiled(broken.build())
        assert "binding-mismatch" in report.codes()

    def test_diagnostics_sorted_by_instruction(self):
        broken = _Compiled()
        del broken.instructions[0]
        broken.instructions.append(PlutoMove(broken.r1, broken.r1))
        report = verify_compiled(broken.build())
        indices = [d.instruction for d in report if d.instruction is not None]
        assert indices == sorted(indices)


class TestShardPlanVerification:
    @staticmethod
    def _plan(index, bank, start, stop) -> ShardPlan:
        return ShardPlan(index=index, bank=bank, start=start, stop=stop, calls=())

    def test_disjoint_plans_are_clean(self):
        plans = [self._plan(0, 0, 0, 32), self._plan(1, 1, 32, 64)]
        assert verify_shard_plans(plans, num_banks=16).clean

    def test_aliased_slices(self):
        plans = [self._plan(0, 0, 0, 40), self._plan(1, 1, 32, 64)]
        report = verify_shard_plans(plans, num_banks=16)
        assert "aliased-slices" in report.codes()
        (finding,) = report.errors
        assert "[0, 40)" in finding.message and "[32, 64)" in finding.message
        with pytest.raises(VerificationError, match="aliased-slices"):
            report.raise_if_errors()

    def test_slice_gap_is_warning(self):
        plans = [self._plan(0, 0, 0, 16), self._plan(1, 1, 32, 64)]
        report = verify_shard_plans(plans, num_banks=16)
        assert report.ok
        assert "slice-gap" in report.codes()

    def test_empty_shard_and_bank_range(self):
        plans = [self._plan(0, 99, 16, 16)]
        report = verify_shard_plans(plans, num_banks=16)
        assert {"empty-shard", "bank-out-of-range"} <= report.codes()

    def test_duplicate_bank_is_warning(self):
        plans = [self._plan(0, 3, 0, 32), self._plan(1, 3, 32, 64)]
        report = verify_shard_plans(plans, num_banks=16)
        assert report.ok
        assert "duplicate-bank" in report.codes()

    def test_shards_overcommit(self):
        plans = [self._plan(i, i, 4 * i, 4 * (i + 1)) for i in range(20)]
        report = verify_shard_plans(plans, num_banks=16)
        assert "shards-overcommit" in report.codes()


class TestDiagnosticMachinery:
    def test_render_format(self):
        diagnostic = Diagnostic(
            severity=Severity.ERROR,
            code="use-before-def",
            message="r3 used before allocation",
            instruction=3,
            hint="allocate it first",
        )
        assert diagnostic.render() == (
            "error[use-before-def] @3: r3 used before allocation "
            "(allocate it first)"
        )

    def test_verification_error_carries_diagnostics(self):
        report = verify_calls([])
        with pytest.raises(VerificationError) as excinfo:
            report.raise_if_errors()
        error = excinfo.value
        assert isinstance(error, ConfigurationError)  # backward compat
        assert error.diagnostics
        assert error.diagnostics[0].code == "empty-program"
        assert "empty-program" in str(error)

    def test_shared_builders_match_api_layer_messages(self):
        narrow = narrow_output_diagnostic(_vec("out", bit_width=4), _lut())
        assert narrow is not None and narrow.code == "narrow-output"
        wide_enough = narrow_output_diagnostic(_vec("out"), _lut())
        assert wide_enough is None
        operand = operand_width_diagnostic(_vec("a", bit_width=2), 4)
        assert operand is not None and operand.code == "operand-width"
        overcommit = shards_overcommit_diagnostic(20, 16)
        assert overcommit is not None and "16 banks" in overcommit.message
        assert shards_overcommit_diagnostic(16, 16) is None


class TestFrontDoors:
    def test_config_rejects_unknown_verify_mode(self):
        with pytest.raises(ConfigurationError, match="unknown verify mode"):
            PlutoConfig(verify="sometimes")

    def test_verification_enabled_modes(self):
        assert verification_enabled("always") is True
        assert verification_enabled("off") is False
        assert verification_enabled("debug") is __debug__
        with pytest.raises(ConfigurationError):
            verification_enabled("bogus")

    def test_session_verify_returns_report(self):
        session = PlutoSession()
        a = session.pluto_malloc(ELEMENTS, 8, "a")
        out = session.pluto_malloc(ELEMENTS, 8, "out")
        session.api_pluto_map(_lut(), a, out)
        report = session.verify()
        assert report.clean

    def test_session_verify_reports_without_raising(self):
        session = PlutoSession()
        a = session.pluto_malloc(ELEMENTS, 8, "a")
        out = session.pluto_malloc(ELEMENTS, 8, "out")
        session.api_pluto_map(_lut(), a, out)
        session.calls.append(session.calls[0])  # inject multiple-assignment
        report = session.verify()
        assert not report.ok
        assert "multiple-assignment" in report.codes()

    def test_run_rejects_under_verify_always(self):
        session = PlutoSession()
        a = session.pluto_malloc(ELEMENTS, 8, "a")
        out = session.pluto_malloc(ELEMENTS, 8, "out")
        session.api_pluto_map(_lut(), a, out)
        session.calls.append(session.calls[0])
        engine = PlutoEngine(PlutoConfig(verify="always"))
        inputs = {"a": np.arange(ELEMENTS, dtype=np.uint8)}
        with pytest.raises(VerificationError, match="multiple-assignment"):
            session.run(inputs, engine=engine)

    def test_run_executes_clean_program_under_verify_always(self):
        session = PlutoSession()
        a = session.pluto_malloc(ELEMENTS, 8, "a")
        out = session.pluto_malloc(ELEMENTS, 8, "out")
        table = _lut()
        session.api_pluto_map(table, a, out)
        engine = PlutoEngine(PlutoConfig(verify="always"))
        data = np.arange(ELEMENTS, dtype=np.uint8)
        result = session.run({"a": data}, engine=engine)
        expected = np.array([table.values[x] for x in data])
        assert np.array_equal(result.outputs["out"], expected)

    def test_api_layer_raises_verification_error_with_diagnostics(self):
        session = PlutoSession()
        a = session.pluto_malloc(ELEMENTS, 8, "a")
        narrow = session.pluto_malloc(ELEMENTS, 4, "narrow")
        with pytest.raises(VerificationError) as excinfo:
            session.api_pluto_map(_lut(), a, narrow)
        assert excinfo.value.diagnostics[0].code == "narrow-output"

    def test_service_rejects_malformed_request_at_submit(self):
        async def main():
            session = PlutoSession()
            a = session.pluto_malloc(ELEMENTS, 8, "a")
            out = session.pluto_malloc(ELEMENTS, 8, "out")
            session.api_pluto_map(_lut(), a, out)
            session.calls.append(session.calls[0])
            inputs = {"a": np.arange(ELEMENTS, dtype=np.uint8)}
            async with session.serve() as service:
                with pytest.raises(VerificationError, match="request"):
                    await service.submit(inputs)

        asyncio.run(main())

    def test_verify_cached_memoizes_on_structure(self):
        clear_verifier_cache()
        calls = _valid_calls()
        first = verify_cached(calls)
        second = verify_cached(list(calls))
        assert first.clean and second.clean
        stats = verifier_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_cli_lints_registry_workloads(self, capsys):
        assert analyze_main(["bitcount", "--elements", "64"]) == 0
        printed = capsys.readouterr().out
        assert "bitcount" in printed and "clean" in printed

    def test_cli_all_workloads_clean(self, capsys):
        assert analyze_main(["--all-workloads", "--elements", "64"]) == 0
        printed = capsys.readouterr().out
        assert "verify clean" in printed

    def test_cli_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            analyze_main(["no-such-workload"])


class TestOptimizerInvariants:
    def test_check_pass_invariants_accepts_valid_program(self):
        report = check_pass_invariants(
            _valid_calls(), preserved={"out"}, pass_name="noop"
        )
        assert report.ok

    def test_check_pass_invariants_rejects_dropped_output(self):
        calls = _valid_calls()[:1]  # 'out' no longer produced
        with pytest.raises(VerificationError, match="output-dropped"):
            check_pass_invariants(calls, preserved={"out"}, pass_name="broken")

    def test_pass_manager_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown verify mode"):
            PassManager(verify="bogus")

    @pytest.mark.parametrize(
        "workload", ["image", "crc", "salsa20", "vmpc", "bitcount", "vector_ops"]
    )
    def test_fixpoint_bit_identical_under_verify_always(self, workload):
        calls = list(workload_program(workload, elements=64, seed=0).session.calls)
        verified = optimize_program(calls, verify="always")
        unverified = optimize_program(calls, verify="off")
        assert program_structure_key(list(verified.calls)) == (
            program_structure_key(list(unverified.calls))
        )
        assert verified.output_names == unverified.output_names


#: Mutations the fuzzer applies to valid optimizer-output programs, with
#: the diagnostic code each must produce.  Every mutator returns None
#: when no call in the program is applicable.
def _mutate_duplicate(calls: list, rng: random.Random):
    index = rng.randrange(len(calls))
    return calls + [calls[index]], "multiple-assignment"


def _mutate_unknown_operation(calls: list, rng: random.Random):
    index = rng.randrange(len(calls))
    mutated = list(calls)
    mutated[index] = replace(calls[index], operation="frobnicate")
    return mutated, "unknown-operation"


def _mutate_drop_lut(calls: list, rng: random.Random):
    lut_backed = [i for i, c in enumerate(calls) if c.lut is not None]
    if not lut_backed:
        return None
    index = rng.choice(lut_backed)
    mutated = list(calls)
    mutated[index] = replace(calls[index], lut=None)
    return mutated, "missing-lut"


def _mutate_narrow_output(calls: list, rng: random.Random):
    candidates = [
        i
        for i, c in enumerate(calls)
        if c.lut is not None and c.lut.element_bits > 1
    ]
    if not candidates:
        return None
    index = rng.choice(candidates)
    call = calls[index]
    narrowed = replace(call.output, bit_width=call.lut.element_bits - 1)
    mutated = list(calls)
    mutated[index] = replace(call, output=narrowed)
    return mutated, "narrow-output"


_MUTATORS = (
    _mutate_duplicate,
    _mutate_unknown_operation,
    _mutate_drop_lut,
    _mutate_narrow_output,
)


class TestFuzzMutatedPrograms:
    """Every seeded mutation of a valid optimized program must be caught."""

    @pytest.mark.parametrize(
        "workload", ["image", "crc", "salsa20", "vmpc", "bitcount", "vector_ops"]
    )
    def test_mutations_are_caught(self, workload):
        program = workload_program(workload, elements=64, seed=0)
        optimized = PlutoSession.optimize(program.session)
        calls = list(optimized.calls)
        assert verify_program(calls).ok, "fuzz base program must verify"
        rng = random.Random(f"fuzz-{workload}")
        applied = 0
        for round_index in range(8):
            mutator = _MUTATORS[round_index % len(_MUTATORS)]
            outcome = mutator(calls, rng)
            if outcome is None:
                continue
            mutated, expected_code = outcome
            report = verify_program(mutated)
            assert not report.ok, (
                f"{mutator.__name__} on {workload} went undetected"
            )
            assert expected_code in report.codes()
            applied += 1
        assert applied >= 4  # every workload exercises at least one full cycle


class TestDataflowSharing:
    """The compiled backend and the verifier consume one dataflow pass."""

    def test_dataflow_summary_matches_compiled_metadata(self):
        compiled = _Compiled().build()
        safe = analyze_dataflow(compiled, assume_external_width=False)
        assert tuple(safe.row_slots) == (0, 1)
        assert safe.facts[3].result_slot == 1
        # The safe tier trusts nothing about external inputs: guard.
        assert safe.facts[3].guard_needed
        # The fast tier assumes declared widths: an 8-bit input cannot
        # reach past a 256-entry table, so the guard is elided.
        fast = analyze_dataflow(compiled, assume_external_width=True)
        assert not fast.facts[3].guard_needed

    def test_guard_flag_matches_backend_guarding(self):
        broken = _Compiled()
        small = _lut(index_bits=7)
        broken.s0 = SubarrayRegister(0, 128, small.name)
        broken.instructions[2] = PlutoSubarrayAlloc(broken.s0, 128, small.name)
        broken.instructions[3] = PlutoOp(broken.r1, broken.r0, broken.s0, 128, 8)
        broken.lut_bindings = {0: small}
        summary = analyze_dataflow(broken.build(), assume_external_width=True)
        assert summary.facts[3].guard_needed

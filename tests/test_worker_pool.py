"""Tests for the multi-worker serving tier (serve/pool.py, serve/client.py)."""

from __future__ import annotations

import time
import zlib

import numpy as np
import pytest

from repro.api import PlutoSession
from repro.errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadError,
    WorkerCrashedError,
)
from repro.serve import PlutoWorkerPool, fan_out, map_parallel

ELEMENTS = 256


def _add_program() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 4, "a")
    b = session.pluto_malloc(ELEMENTS, 4, "b")
    out = session.pluto_malloc(ELEMENTS, 8, "out")
    session.api_pluto_add(a, b, out, bit_width=4)
    return session


def _mul_program() -> PlutoSession:
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 2, "a")
    b = session.pluto_malloc(ELEMENTS, 2, "b")
    out = session.pluto_malloc(ELEMENTS, 4, "out")
    session.api_pluto_mul(a, b, out, bit_width=2)
    return session


def _add_inputs(rng: np.random.Generator) -> dict[str, np.ndarray]:
    return {
        "a": rng.integers(0, 16, ELEMENTS),
        "b": rng.integers(0, 16, ELEMENTS),
    }


def _mul_inputs(rng: np.random.Generator) -> dict[str, np.ndarray]:
    return {
        "a": rng.integers(0, 4, ELEMENTS),
        "b": rng.integers(0, 4, ELEMENTS),
    }


def _digests(outputs) -> dict[str, int]:
    return {
        name: zlib.crc32(np.asarray(array).tobytes())
        for name, array in outputs.items()
    }


class TestWorkerPool:
    def test_serves_correct_outputs_in_order(self):
        session = _add_program()
        rng = np.random.default_rng(3)
        requests = [_add_inputs(rng) for _ in range(12)]
        with PlutoWorkerPool(workers=2, chunk_size=4) as pool:
            assert pool.wait_ready(60.0)
            results = map_parallel(pool, session, requests)
        assert len(results) == len(requests)
        for inputs, result in zip(requests, results):
            assert np.array_equal(
                result.outputs["out"], inputs["a"] + inputs["b"]
            )
            assert result.latency_ns > 0
            assert result.digests == _digests(result.outputs)
        assert pool.stats.completed == len(requests)
        assert pool.stats.failed == 0

    def test_results_bit_identical_to_single_process(self):
        session = _add_program()
        rng = np.random.default_rng(5)
        inputs = _add_inputs(rng)
        reference = _digests(session.run(inputs).outputs)
        with PlutoWorkerPool(workers=1) as pool:
            result = pool.submit(session, inputs).result(60.0)
        assert result.digests == reference

    def test_return_outputs_false_still_ships_digests(self):
        session = _add_program()
        rng = np.random.default_rng(7)
        inputs = _add_inputs(rng)
        reference = _digests(session.run(inputs).outputs)
        with PlutoWorkerPool(workers=1) as pool:
            result = pool.submit(
                session, inputs, return_outputs=False
            ).result(60.0)
        assert result.outputs is None
        assert result.digests == reference

    def test_affinity_routes_distinct_programs_to_distinct_workers(self):
        adds, muls = _add_program(), _mul_program()
        rng = np.random.default_rng(11)
        jobs = [
            (adds, _add_inputs(rng)) if index % 2 == 0
            else (muls, _mul_inputs(rng))
            for index in range(10)
        ]
        with PlutoWorkerPool(workers=2, chunk_size=4) as pool:
            results = fan_out(pool, jobs, return_outputs=False)
        assert len(results) == 10
        # One program per worker, every request on its program's worker.
        assert sorted(pool._programs_per_worker) == [1, 1]
        assert sorted(pool.stats.per_worker_served) == [5, 5]

    def test_same_program_coalesces_on_one_worker(self):
        session = _add_program()
        rng = np.random.default_rng(13)
        with PlutoWorkerPool(workers=2, chunk_size=8, max_batch=8) as pool:
            results = map_parallel(
                pool, session, [_add_inputs(rng) for _ in range(8)],
                return_outputs=False,
            )
        served = pool.stats.per_worker_served
        assert sorted(served) == [0, 8]  # affinity keeps one worker warm
        assert any(result.batch_size > 1 for result in results)

    def test_shedding_raises_overload(self):
        session = _add_program()
        rng = np.random.default_rng(17)
        with PlutoWorkerPool(
            workers=1, max_inflight=4, chunk_size=4
        ) as pool:
            # Fill the in-flight window while the worker cold-compiles.
            futures = pool.submit_many(
                session, [_add_inputs(rng) for _ in range(4)]
            )
            with pytest.raises(ServiceOverloadError):
                pool.submit(session, _add_inputs(rng), shed=True)
            for future in futures:
                future.result(60.0)
        assert pool.stats.shed == 1
        assert pool.stats.completed == 4

    def test_blocking_admission_eventually_serves_everything(self):
        session = _add_program()
        rng = np.random.default_rng(19)
        with PlutoWorkerPool(
            workers=1, max_inflight=2, chunk_size=2
        ) as pool:
            results = map_parallel(
                pool, session, [_add_inputs(rng) for _ in range(10)],
                return_outputs=False,
            )
        assert len(results) == 10
        assert pool.stats.completed == 10

    def test_per_request_errors_surface_on_their_future(self):
        session = _add_program()
        rng = np.random.default_rng(23)
        with PlutoWorkerPool(workers=1) as pool:
            good = pool.submit(session, _add_inputs(rng))
            bad = pool.submit(session, {"nonsense": rng.integers(0, 4, 8)})
            assert good.result(60.0).outputs["out"].size == ELEMENTS
            with pytest.raises(Exception):
                bad.result(60.0)
        assert pool.stats.completed == 1
        assert pool.stats.failed == 1

    def test_unhashable_structure_is_rejected_at_routing(self):
        session = _add_program()
        session.calls[0].parameters["taps"] = [1, 2, 3]
        with PlutoWorkerPool(workers=1) as pool:
            with pytest.raises(ConfigurationError):
                pool.submit(session, {})

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            PlutoWorkerPool(workers=0)
        with pytest.raises(ConfigurationError):
            PlutoWorkerPool(workers=1, max_inflight=0)
        with pytest.raises(ConfigurationError):
            PlutoWorkerPool(workers=1, chunk_size=0)

    def test_latency_percentiles_stream_into_pool_stats(self):
        session = _add_program()
        rng = np.random.default_rng(29)
        with PlutoWorkerPool(workers=1, chunk_size=4) as pool:
            map_parallel(
                pool, session, [_add_inputs(rng) for _ in range(8)],
                return_outputs=False,
            )
        latency = pool.stats.summary()["latency"]
        for name in ("queue_wait", "execute", "end_to_end"):
            quantiles = latency[name]
            assert quantiles["count"] == 8
            assert (
                0.0
                <= quantiles["p50_s"]
                <= quantiles["p95_s"]
                <= quantiles["p99_s"]
                <= quantiles["max_s"]
            )
        assert latency["end_to_end"]["mean_s"] > 0.0


class TestGracefulShutdown:
    def test_close_drains_queued_requests(self):
        """Requests accepted before close() complete, never hang or drop."""
        session = _add_program()
        rng = np.random.default_rng(31)
        pool = PlutoWorkerPool(workers=2, chunk_size=2)
        requests = [_add_inputs(rng) for _ in range(8)]
        futures = pool.submit_many(session, requests, return_outputs=True)
        pool.close()  # immediately: the stop sentinel rides behind them
        for inputs, future in zip(requests, futures):
            result = future.result(1.0)  # already resolved by close()
            assert np.array_equal(
                result.outputs["out"], inputs["a"] + inputs["b"]
            )

    def test_close_leaves_no_orphan_processes(self):
        session = _add_program()
        rng = np.random.default_rng(37)
        pool = PlutoWorkerPool(workers=2)
        pool.submit(session, _add_inputs(rng)).result(60.0)
        pool.close()
        assert all(not process.is_alive() for process in pool._processes)
        pool.close()  # idempotent

    def test_submit_after_close_raises_closed(self):
        session = _add_program()
        rng = np.random.default_rng(41)
        pool = PlutoWorkerPool(workers=1)
        pool.close()
        with pytest.raises(ServiceClosedError):
            pool.submit(session, _add_inputs(rng))

    def test_workers_report_final_statistics_at_close(self):
        session = _add_program()
        rng = np.random.default_rng(43)
        with PlutoWorkerPool(workers=1) as pool:
            pool.submit(session, _add_inputs(rng)).result(60.0)
        report = pool.worker_reports[0]
        assert report["programs"] == 1
        assert report["service"]["served"] == 1
        assert report["service"]["latency"]["end_to_end"]["count"] == 1
        assert "programs" in report["cache_stats"]

    def test_crashed_worker_fails_its_requests_not_the_pool(self):
        session = _add_program()
        rng = np.random.default_rng(47)
        pool = PlutoWorkerPool(workers=1)
        try:
            pool.submit(session, _add_inputs(rng)).result(60.0)
            pool._processes[0].kill()
            deadline = time.monotonic() + 10.0
            while 0 not in pool._dead and time.monotonic() < deadline:
                time.sleep(0.05)
            assert 0 in pool._dead
            with pytest.raises(WorkerCrashedError):
                pool.submit(session, _add_inputs(rng))
        finally:
            pool.close(timeout=10.0)
        assert all(not process.is_alive() for process in pool._processes)

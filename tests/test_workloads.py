"""Correctness tests for the evaluated workloads (Table 4).

Every workload's LUT decomposition must match its host-side reference
bit-exactly; the crypto workloads are additionally checked against
independently coded reference vectors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.utils.fixedpoint import Q1_7, Q1_15
from repro.workloads.bitcount import BitCount
from repro.workloads.bitwise import RowBitwise
from repro.workloads.crc import CrcWorkload
from repro.workloads.image import ColorGrading, ImageBinarization, synthetic_image
from repro.workloads.registry import (
    all_workloads,
    figure7_workloads,
    figure9_workloads,
    workload_by_name,
)
from repro.workloads.salsa20 import Salsa20Workload, salsa20_block
from repro.workloads.vector_ops import VectorAddition, VectorMultiplication
from repro.workloads.vmpc import VmpcWorkload, vmpc_ksa, vmpc_keystream


class TestVectorOps:
    def test_addition_lut_decomposition(self):
        assert VectorAddition(4).verify(2048)

    def test_addition_8bit(self):
        assert VectorAddition(8).verify(512)

    def test_multiplication_q1_7(self):
        assert VectorMultiplication(Q1_7).verify(512)

    def test_multiplication_q1_15(self):
        assert VectorMultiplication(Q1_15).verify(128)

    def test_multiplication_recipe_scales_with_width(self):
        narrow = VectorMultiplication(Q1_7).recipe
        wide = VectorMultiplication(Q1_15).recipe
        assert len(wide.sweeps_per_row) > len(narrow.sweeps_per_row)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_addition_property(self, seed):
        workload = VectorAddition(4)
        data = workload.generate_input(64, seed=seed)
        assert np.array_equal(workload.lut_reference(data), data[0] + data[1])


class TestBitwiseAndBitcount:
    @pytest.mark.parametrize("operation", ["and", "or", "xor"])
    def test_bitwise_decomposition(self, operation):
        assert RowBitwise(operation).verify(1024)

    def test_unsupported_operation_rejected(self):
        with pytest.raises(WorkloadError):
            RowBitwise("nand2")

    @pytest.mark.parametrize("bits", [4, 8])
    def test_bitcount_decomposition(self, bits):
        assert BitCount(bits).verify(2048)

    def test_bitcount_other_widths_rejected(self):
        with pytest.raises(WorkloadError):
            BitCount(16)


class TestCrc:
    @pytest.mark.parametrize("width", [8, 16, 32])
    def test_lut_decomposition(self, width):
        assert CrcWorkload(width).verify(512)

    def test_crc8_against_bit_serial_reference(self):
        workload = CrcWorkload(8, packet_bytes=16)
        data = workload.generate_input(32, seed=3)

        def bit_serial_crc8(packet):
            crc = 0
            for byte in packet:
                crc ^= int(byte)
                for _ in range(8):
                    crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
            return crc

        packets = data.reshape(-1, 16)
        expected = np.array([bit_serial_crc8(p) for p in packets], dtype=np.uint64)
        assert np.array_equal(workload.reference(data), expected)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            CrcWorkload(12)
        with pytest.raises(WorkloadError):
            CrcWorkload(8, packet_bytes=0)

    def test_serial_fraction_declared(self):
        assert CrcWorkload(32).recipe.serial_fraction > 0


class TestSalsa20:
    def test_lut_decomposition(self):
        assert Salsa20Workload().verify(512)

    def test_block_function_specification_vector(self):
        # Salsa20 core of the all-zero state is all zeros (x + 0 rounds fixed point).
        assert salsa20_block([0] * 16) == [0] * 16

    def test_block_function_is_deterministic_and_nontrivial(self):
        state = list(range(16))
        first = salsa20_block(state)
        second = salsa20_block(state)
        assert first == second
        assert first != state

    def test_encryption_roundtrip(self):
        workload = Salsa20Workload()
        data = workload.generate_input(512, seed=9)
        ciphertext = workload.reference(data)
        assert not np.array_equal(ciphertext, data)
        # XOR stream ciphers are their own inverse.
        assert np.array_equal(workload.reference(ciphertext), data)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            Salsa20Workload(packet_bytes=100)
        with pytest.raises(WorkloadError):
            salsa20_block([0] * 15)
        with pytest.raises(WorkloadError):
            salsa20_block([0] * 16, rounds=7)


class TestVmpc:
    def test_lut_decomposition(self):
        assert VmpcWorkload().verify(512)

    def test_ksa_produces_a_permutation(self):
        permutation, s = vmpc_ksa(bytes(range(16)), bytes(range(16, 32)))
        assert sorted(permutation) == list(range(256))
        assert 0 <= s <= 255

    def test_keystream_deterministic(self):
        permutation, s = vmpc_ksa(b"key", b"iv12")
        first, _, _ = vmpc_keystream(list(permutation), s, 64)
        second, _, _ = vmpc_keystream(list(permutation), s, 64)
        assert np.array_equal(first, second)

    def test_encryption_roundtrip(self):
        workload = VmpcWorkload()
        data = workload.generate_input(512, seed=4)
        ciphertext = workload.reference(data)
        assert np.array_equal(workload.reference(ciphertext), data)

    def test_empty_key_rejected(self):
        with pytest.raises(WorkloadError):
            vmpc_ksa(b"", b"iv")


class TestImageWorkloads:
    def test_binarization_decomposition(self):
        assert ImageBinarization().verify(4096)

    def test_color_grading_decomposition(self):
        assert ColorGrading().verify(4096)

    def test_binarization_is_binary(self):
        workload = ImageBinarization()
        data = workload.generate_input(1024)
        result = workload.reference(data)
        assert set(np.unique(result)).issubset({0, 255})

    def test_synthetic_image_covers_dynamic_range(self):
        image = synthetic_image(100_000, seed=2)
        assert image.min() >= 0 and image.max() <= 255
        assert len(np.unique(image)) > 100  # broad histogram

    def test_invalid_threshold_rejected(self):
        with pytest.raises(WorkloadError):
            ImageBinarization(threshold_fraction=1.5)

    def test_default_size_matches_paper(self):
        assert ImageBinarization().default_elements == 936_000 * 3


class TestRegistry:
    def test_all_workloads_have_unique_names(self):
        names = [w.name for w in all_workloads()]
        assert len(names) == len(set(names))

    def test_figure7_set(self):
        names = [w.name for w in figure7_workloads()]
        assert names == ["CRC-8", "CRC-16", "CRC-32", "Salsa20", "VMPC", "ImgBin", "ColorGrade"]

    def test_figure9_set_contains_fpga_workloads(self):
        names = {w.name for w in figure9_workloads()}
        assert {"ADD4", "ADD8", "MUL8", "MUL16", "BC4", "BC8", "ImgBin"} <= names

    def test_lookup_by_name(self):
        assert workload_by_name("imgbin").name == "ImgBin"
        with pytest.raises(WorkloadError):
            workload_by_name("nonexistent")

    def test_every_workload_recipe_is_well_formed(self):
        for workload in all_workloads():
            recipe = workload.recipe
            assert recipe.element_bits > 0
            assert recipe.cpu_ops_per_element > 0
            assert 0 <= recipe.serial_fraction < 1
